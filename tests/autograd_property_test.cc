// Property tests for the autograd engine: numerical gradient checks through
// whole composed networks (MLP, GAT, LSTM, GRU, the AMS master pattern) and
// parameterized shape sweeps. These catch chain-rule mistakes a per-op test
// cannot.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "gnn/gat.h"
#include "nn/dense.h"
#include "seq/recurrent.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ams {
namespace {

using la::Matrix;
using tensor::Tensor;

Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 0.5) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = scale * rng->Normal();
  }
  return m;
}

/// Verifies every element of every parameter against central differences.
void CheckAllParams(const std::function<Tensor()>& build_loss,
                    const std::vector<Tensor>& params, double tol = 2e-5) {
  Tensor loss = build_loss();
  tensor::Backward(loss);
  auto forward = [&]() { return build_loss().value()(0, 0); };
  for (size_t p = 0; p < params.size(); ++p) {
    Tensor param = params[p];
    const Matrix analytic = param.grad();
    for (int r = 0; r < param.rows(); ++r) {
      for (int c = 0; c < param.cols(); ++c) {
        const double numeric =
            tensor::NumericalGradient(forward, param, r, c, 1e-5);
        EXPECT_NEAR(analytic(r, c), numeric, tol)
            << "param " << p << " at (" << r << ", " << c << ")";
      }
    }
  }
}

struct ShapeCase {
  int batch;
  int in;
  int hidden;
};

class MlpGradSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(MlpGradSweep, EndToEndGradientsMatchNumerical) {
  const ShapeCase shape = GetParam();
  Rng rng(shape.batch * 100 + shape.in);
  // tanh avoids ReLU kinks that break finite differences.
  nn::Mlp mlp(shape.in, {shape.hidden}, 1, nn::Activation::kTanh, &rng);
  Tensor x = Tensor::Constant(RandomMatrix(shape.batch, shape.in, &rng));
  Tensor y = Tensor::Constant(RandomMatrix(shape.batch, 1, &rng));
  CheckAllParams([&]() { return tensor::MseLoss(mlp.Forward(x), y); },
                 mlp.Parameters());
}

INSTANTIATE_TEST_SUITE_P(Shapes, MlpGradSweep,
                         ::testing::Values(ShapeCase{1, 2, 3},
                                           ShapeCase{4, 3, 5},
                                           ShapeCase{7, 6, 4},
                                           ShapeCase{2, 8, 2}));

TEST(GatGradProperty, FullNetworkGradientsMatchNumerical) {
  Rng rng(11);
  gnn::GatConfig config;
  config.hidden_per_head = {3};
  config.num_heads = 2;
  config.out_features = 2;
  config.hidden_activation = nn::Activation::kTanh;
  gnn::GatNetwork gat(4, config, &rng);
  const int n = 5;
  Tensor x = Tensor::Constant(RandomMatrix(n, 4, &rng));
  Matrix mask(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    mask(i, i) = 1.0;
    mask(i, (i + 1) % n) = 1.0;
    mask(i, (i + 2) % n) = 1.0;
  }
  Tensor target = Tensor::Constant(RandomMatrix(n, 2, &rng));
  CheckAllParams(
      [&]() { return tensor::MseLoss(gat.Forward(x, mask), target); },
      gat.Parameters(), 5e-5);
}

TEST(LstmGradProperty, UnrolledGradientsMatchNumerical) {
  Rng rng(12);
  seq::LstmCell cell(2, 3, &rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 4; ++t) {
    steps.push_back(Tensor::Constant(RandomMatrix(3, 2, &rng)));
  }
  Tensor target = Tensor::Constant(RandomMatrix(3, 3, &rng));
  CheckAllParams(
      [&]() {
        return tensor::MseLoss(seq::EncodeSequence(cell, steps), target);
      },
      cell.Parameters(), 5e-5);
}

TEST(GruGradProperty, UnrolledGradientsMatchNumerical) {
  Rng rng(13);
  seq::GruCell cell(2, 3, &rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 4; ++t) {
    steps.push_back(Tensor::Constant(RandomMatrix(3, 2, &rng)));
  }
  Tensor target = Tensor::Constant(RandomMatrix(3, 3, &rng));
  CheckAllParams(
      [&]() {
        return tensor::MseLoss(seq::EncodeSequence(cell, steps), target);
      },
      cell.Parameters(), 5e-5);
}

TEST(MasterPatternGradProperty, SlaveGenerationObjectiveGradients) {
  // The AMS master pattern in miniature: coefficients = MLP(x), prediction
  // = rowdot([x|1], coeffs), loss = mse + slg pull toward an anchor.
  Rng rng(14);
  const int n = 5;
  const int f = 3;
  nn::Mlp master(f, {4}, f + 1, nn::Activation::kTanh, &rng);
  Matrix x_val = RandomMatrix(n, f, &rng);
  Tensor x = Tensor::Constant(x_val);
  Tensor xa = Tensor::Constant(Matrix::HStack(x_val, Matrix::Ones(n, 1)));
  Tensor y = Tensor::Constant(RandomMatrix(n, 1, &rng));
  Tensor anchor = Tensor::Constant(RandomMatrix(1, f + 1, &rng));
  CheckAllParams(
      [&]() {
        Tensor coeffs = master.Forward(x);
        Tensor pred = tensor::RowDot(xa, coeffs);
        Tensor data_loss = tensor::MseLoss(pred, y);
        Tensor slg = tensor::SumSquares(tensor::Sub(coeffs, anchor));
        return tensor::Add(data_loss, tensor::Scale(slg, 0.3));
      },
      master.Parameters(), 5e-5);
}

TEST(SecondBackwardProperty, RebuiltGraphGivesSameGradients) {
  // Building the same graph twice and backpropagating accumulates exactly
  // double the gradient (graph rebuilds are independent).
  Rng rng(15);
  nn::Dense layer(3, 2, nn::Activation::kTanh, &rng);
  Tensor x = Tensor::Constant(RandomMatrix(4, 3, &rng));
  auto loss = [&]() { return tensor::SumSquares(layer.Forward(x)); };
  tensor::Backward(loss());
  Matrix once = layer.weight().grad();
  tensor::Backward(loss());
  Matrix twice = layer.weight().grad();
  EXPECT_LT((twice - once * 2.0).Norm(), 1e-10);
}

class DropoutRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DropoutRateSweep, MeanPreservedAcrossRates) {
  Rng rng(16);
  const double rate = GetParam();
  Tensor a = Tensor::Constant(Matrix(300, 300, 2.0));
  Tensor out = tensor::Dropout(a, rate, /*training=*/true, &rng);
  EXPECT_NEAR(out.value().Mean(), 2.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Rates, DropoutRateSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75));

}  // namespace
}  // namespace ams
