// Property tests for the autograd engine: numerical gradient checks through
// whole composed networks (MLP, GAT, LSTM, GRU, the AMS master pattern) and
// parameterized shape sweeps. These catch chain-rule mistakes a per-op test
// cannot.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "gnn/gat.h"
#include "nn/dense.h"
#include "seq/recurrent.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace ams {
namespace {

using la::Matrix;
using tensor::Tensor;

Matrix RandomMatrix(int rows, int cols, Rng* rng, double scale = 0.5) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = scale * rng->Normal();
  }
  return m;
}

/// Verifies every element of every parameter against central differences.
void CheckAllParams(const std::function<Tensor()>& build_loss,
                    const std::vector<Tensor>& params, double tol = 2e-5) {
  Tensor loss = build_loss();
  tensor::Backward(loss);
  auto forward = [&]() { return build_loss().value()(0, 0); };
  for (size_t p = 0; p < params.size(); ++p) {
    Tensor param = params[p];
    const Matrix analytic = param.grad();
    for (int r = 0; r < param.rows(); ++r) {
      for (int c = 0; c < param.cols(); ++c) {
        const double numeric =
            tensor::NumericalGradient(forward, param, r, c, 1e-5);
        EXPECT_NEAR(analytic(r, c), numeric, tol)
            << "param " << p << " at (" << r << ", " << c << ")";
      }
    }
  }
}

struct ShapeCase {
  int batch;
  int in;
  int hidden;
};

class MlpGradSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(MlpGradSweep, EndToEndGradientsMatchNumerical) {
  const ShapeCase shape = GetParam();
  Rng rng(shape.batch * 100 + shape.in);
  // tanh avoids ReLU kinks that break finite differences.
  nn::Mlp mlp(shape.in, {shape.hidden}, 1, nn::Activation::kTanh, &rng);
  Tensor x = Tensor::Constant(RandomMatrix(shape.batch, shape.in, &rng));
  Tensor y = Tensor::Constant(RandomMatrix(shape.batch, 1, &rng));
  CheckAllParams([&]() { return tensor::MseLoss(mlp.Forward(x), y); },
                 mlp.Parameters());
}

INSTANTIATE_TEST_SUITE_P(Shapes, MlpGradSweep,
                         ::testing::Values(ShapeCase{1, 2, 3},
                                           ShapeCase{4, 3, 5},
                                           ShapeCase{7, 6, 4},
                                           ShapeCase{2, 8, 2}));

TEST(GatGradProperty, FullNetworkGradientsMatchNumerical) {
  Rng rng(11);
  gnn::GatConfig config;
  config.hidden_per_head = {3};
  config.num_heads = 2;
  config.out_features = 2;
  config.hidden_activation = nn::Activation::kTanh;
  gnn::GatNetwork gat(4, config, &rng);
  const int n = 5;
  Tensor x = Tensor::Constant(RandomMatrix(n, 4, &rng));
  Matrix mask(n, n, 0.0);
  for (int i = 0; i < n; ++i) {
    mask(i, i) = 1.0;
    mask(i, (i + 1) % n) = 1.0;
    mask(i, (i + 2) % n) = 1.0;
  }
  Tensor target = Tensor::Constant(RandomMatrix(n, 2, &rng));
  CheckAllParams(
      [&]() { return tensor::MseLoss(gat.Forward(x, mask), target); },
      gat.Parameters(), 5e-5);
}

TEST(LstmGradProperty, UnrolledGradientsMatchNumerical) {
  Rng rng(12);
  seq::LstmCell cell(2, 3, &rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 4; ++t) {
    steps.push_back(Tensor::Constant(RandomMatrix(3, 2, &rng)));
  }
  Tensor target = Tensor::Constant(RandomMatrix(3, 3, &rng));
  CheckAllParams(
      [&]() {
        return tensor::MseLoss(seq::EncodeSequence(cell, steps), target);
      },
      cell.Parameters(), 5e-5);
}

TEST(GruGradProperty, UnrolledGradientsMatchNumerical) {
  Rng rng(13);
  seq::GruCell cell(2, 3, &rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 4; ++t) {
    steps.push_back(Tensor::Constant(RandomMatrix(3, 2, &rng)));
  }
  Tensor target = Tensor::Constant(RandomMatrix(3, 3, &rng));
  CheckAllParams(
      [&]() {
        return tensor::MseLoss(seq::EncodeSequence(cell, steps), target);
      },
      cell.Parameters(), 5e-5);
}

TEST(MasterPatternGradProperty, SlaveGenerationObjectiveGradients) {
  // The AMS master pattern in miniature: coefficients = MLP(x), prediction
  // = rowdot([x|1], coeffs), loss = mse + slg pull toward an anchor.
  Rng rng(14);
  const int n = 5;
  const int f = 3;
  nn::Mlp master(f, {4}, f + 1, nn::Activation::kTanh, &rng);
  Matrix x_val = RandomMatrix(n, f, &rng);
  Tensor x = Tensor::Constant(x_val);
  Tensor xa = Tensor::Constant(Matrix::HStack(x_val, Matrix::Ones(n, 1)));
  Tensor y = Tensor::Constant(RandomMatrix(n, 1, &rng));
  Tensor anchor = Tensor::Constant(RandomMatrix(1, f + 1, &rng));
  CheckAllParams(
      [&]() {
        Tensor coeffs = master.Forward(x);
        Tensor pred = tensor::RowDot(xa, coeffs);
        Tensor data_loss = tensor::MseLoss(pred, y);
        Tensor slg = tensor::SumSquares(tensor::Sub(coeffs, anchor));
        return tensor::Add(data_loss, tensor::Scale(slg, 0.3));
      },
      master.Parameters(), 5e-5);
}

TEST(SecondBackwardProperty, RebuiltGraphGivesSameGradients) {
  // Building the same graph twice and backpropagating accumulates exactly
  // double the gradient (graph rebuilds are independent).
  Rng rng(15);
  nn::Dense layer(3, 2, nn::Activation::kTanh, &rng);
  Tensor x = Tensor::Constant(RandomMatrix(4, 3, &rng));
  auto loss = [&]() { return tensor::SumSquares(layer.Forward(x)); };
  tensor::Backward(loss());
  Matrix once = layer.weight().grad();
  tensor::Backward(loss());
  Matrix twice = layer.weight().grad();
  EXPECT_LT((twice - once * 2.0).Norm(), 1e-10);
}

// --- Fused elementwise chains: bit-identity against the unfused graph. ---
//
// The fusion contract (tensor/fusion.h) promises the fused node computes the
// SAME bits as the op-per-op graph, forward and backward. These tests build
// both graphs from identical leaf values and compare with exact equality.

/// One recorded step, mirrored onto the fused chain and the unfused ops.
struct FusedStep {
  int kind;       // 0..11, order matches the builder below
  double scalar;  // alpha / s
  int operand;    // index into the leaf set; -1 = none
  int operand2;   // second AddProduct operand; -1 = none
};

constexpr int kFusedKinds = 12;

/// Applies `step` to the unfused graph value `u` using leaf set `leaves`.
Tensor UnfusedStepOp(const Tensor& u, const FusedStep& step,
                     const std::vector<Tensor>& leaves) {
  switch (step.kind) {
    case 0:
      return tensor::Relu(u);
    case 1:
      return tensor::LeakyRelu(u, step.scalar);
    case 2:
      return tensor::Sigmoid(u);
    case 3:
      return tensor::Tanh(u);
    case 4:
      return tensor::Exp(u);
    case 5:
      return tensor::Scale(u, step.scalar);
    case 6:
      return tensor::AddScalar(u, step.scalar);
    case 7:
      return tensor::Add(u, leaves[step.operand]);
    case 8:
      return tensor::Sub(u, leaves[step.operand]);
    case 9:
      return tensor::Mul(u, leaves[step.operand]);
    case 10:
      return tensor::Add(u, tensor::Scale(leaves[step.operand], step.scalar));
    case 11:
      return tensor::Add(
          u, tensor::Mul(leaves[step.operand], leaves[step.operand2]));
  }
  ADD_FAILURE() << "unknown kind " << step.kind;
  return u;
}

void RecordFusedStep(tensor::ElementwiseChain* chain, const FusedStep& step,
                     const std::vector<Tensor>& leaves) {
  switch (step.kind) {
    case 0:
      chain->Relu();
      break;
    case 1:
      chain->LeakyRelu(step.scalar);
      break;
    case 2:
      chain->Sigmoid();
      break;
    case 3:
      chain->Tanh();
      break;
    case 4:
      chain->Exp();
      break;
    case 5:
      chain->Scale(step.scalar);
      break;
    case 6:
      chain->AddScalar(step.scalar);
      break;
    case 7:
      chain->Add(leaves[step.operand]);
      break;
    case 8:
      chain->Sub(leaves[step.operand]);
      break;
    case 9:
      chain->Mul(leaves[step.operand]);
      break;
    case 10:
      chain->AddScaled(leaves[step.operand], step.scalar);
      break;
    case 11:
      chain->AddProduct(leaves[step.operand], leaves[step.operand2]);
      break;
  }
}

/// Builds the fused and unfused graphs from identical leaf values, runs
/// Backward through a shared weighted-sum head (non-uniform upstream grads),
/// and asserts bit-equality of the forward value and every leaf gradient.
void CheckFusedBitIdentity(int rows, int cols,
                           const std::vector<FusedStep>& steps, Rng* rng) {
  const Matrix x_val = RandomMatrix(rows, cols, rng);
  // Two independent leaf sets with the same values, one per graph, so
  // gradients accumulate separately.
  auto operand_shape = [&](const FusedStep& s) {
    if (s.kind == 11) return std::pair<int, int>(rows, cols);
    switch (s.operand % 4) {
      case 0:
        return std::pair<int, int>(rows, cols);
      case 1:
        return std::pair<int, int>(1, cols);
      case 2:
        return std::pair<int, int>(rows, 1);
      default:
        return std::pair<int, int>(1, 1);
    }
  };
  // Leaf index i is reserved for step i (and i + steps for AddProduct's
  // second operand); some steps deliberately reuse an earlier leaf.
  std::vector<Tensor> leaves_f(2 * steps.size());
  std::vector<Tensor> leaves_u(2 * steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    const FusedStep& s = steps[i];
    if (s.operand < 0) continue;
    for (int slot : {s.operand, s.operand2}) {
      if (slot < 0 || !leaves_f[slot].is_null()) continue;
      const auto [r, c] = operand_shape(s);
      const Matrix v = RandomMatrix(r, c, rng);
      leaves_f[slot] = Tensor::Parameter(v);
      leaves_u[slot] = Tensor::Parameter(v);
    }
  }
  Tensor x_f = Tensor::Parameter(x_val);
  Tensor x_u = Tensor::Parameter(x_val);

  tensor::ElementwiseChain chain;
  for (const FusedStep& s : steps) RecordFusedStep(&chain, s, leaves_f);
  Tensor out_f = chain.Apply(x_f);

  Tensor out_u = x_u;
  for (const FusedStep& s : steps) out_u = UnfusedStepOp(out_u, s, leaves_u);

  ASSERT_TRUE(out_f.value() == out_u.value())
      << "fused forward diverged, max |diff| = "
      << out_f.value().MaxAbsDiff(out_u.value());

  const Matrix head = RandomMatrix(rows, cols, rng);
  tensor::Backward(tensor::Sum(tensor::Mul(out_f, Tensor::Constant(head))));
  tensor::Backward(tensor::Sum(tensor::Mul(out_u, Tensor::Constant(head))));

  ASSERT_TRUE(x_f.grad() == x_u.grad())
      << "input grad diverged, max |diff| = "
      << x_f.grad().MaxAbsDiff(x_u.grad());
  for (size_t i = 0; i < leaves_f.size(); ++i) {
    if (leaves_f[i].is_null()) continue;
    EXPECT_TRUE(leaves_f[i].grad() == leaves_u[i].grad())
        << "operand " << i << " grad diverged, max |diff| = "
        << leaves_f[i].grad().MaxAbsDiff(leaves_u[i].grad());
  }
}

TEST(FusionBitIdentity, RandomChainsMatchUnfusedGraphExactly) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const int rows = 1 + static_cast<int>(rng.UniformInt(6));
    const int cols = 1 + static_cast<int>(rng.UniformInt(6));
    const int n = 1 + static_cast<int>(rng.UniformInt(6));
    std::vector<FusedStep> steps;
    steps.reserve(n);
    for (int i = 0; i < n; ++i) {
      FusedStep s;
      s.kind = static_cast<int>(rng.UniformInt(kFusedKinds));
      s.scalar = rng.Uniform(-1.5, 1.5);
      s.operand = s.kind >= 7 ? i : -1;
      s.operand2 = s.kind == 11 ? n + i : -1;
      steps.push_back(s);
    }
    SCOPED_TRACE("trial " + std::to_string(trial));
    CheckFusedBitIdentity(rows, cols, steps, &rng);
  }
}

TEST(FusionBitIdentity, ReusedOperandAccumulatesInUnfusedOrder) {
  // The same leaf feeding several steps is the ordering-sensitive case:
  // gradient contributions must sum in the unfused graph's order.
  Rng rng(18);
  std::vector<FusedStep> steps = {
      {9, 0.0, 0, -1},   // Mul(t0)
      {2, 0.0, -1, -1},  // Sigmoid
      {7, 0.0, 0, -1},   // Add(t0)  -- same leaf again
      {11, 0.0, 0, 1},   // AddProduct(t0, t1) -- and again
  };
  // Make slot 0 full-shape so every use is broadcast-free.
  for (int trial = 0; trial < 10; ++trial) {
    CheckFusedBitIdentity(4, 4, steps, &rng);
  }
}

TEST(FusionBitIdentity, ChainInputReusedAsOperand) {
  // x both enters the chain and appears as an operand: the fused node holds
  // the same node twice in its parent list, matching the unfused graph.
  Rng rng(19);
  const Matrix x_val = RandomMatrix(3, 5, &rng);
  Tensor x_f = Tensor::Parameter(x_val);
  Tensor x_u = Tensor::Parameter(x_val);

  Tensor out_f =
      tensor::ElementwiseChain().Sigmoid().Mul(x_f).Apply(x_f);
  Tensor out_u = tensor::Mul(tensor::Sigmoid(x_u), x_u);
  ASSERT_TRUE(out_f.value() == out_u.value());

  const Matrix head = RandomMatrix(3, 5, &rng);
  tensor::Backward(tensor::Sum(tensor::Mul(out_f, Tensor::Constant(head))));
  tensor::Backward(tensor::Sum(tensor::Mul(out_u, Tensor::Constant(head))));
  EXPECT_TRUE(x_f.grad() == x_u.grad())
      << "max |diff| = " << x_f.grad().MaxAbsDiff(x_u.grad());
}

TEST(FusionGradProperty, FusedChainGradientsMatchNumerical) {
  // Independent of the unfused graph: fused gradients also agree with
  // central differences through a smooth chain.
  Rng rng(20);
  Tensor x = Tensor::Parameter(RandomMatrix(4, 3, &rng));
  Tensor bias = Tensor::Parameter(RandomMatrix(1, 3, &rng));
  Tensor gate = Tensor::Parameter(RandomMatrix(4, 3, &rng));
  auto build = [&]() {
    Tensor out = tensor::ElementwiseChain()
                     .Add(bias)
                     .Tanh()
                     .Mul(gate)
                     .AddScaled(bias, 0.25)
                     .Apply(x);
    return tensor::Mean(tensor::Mul(out, out));
  };
  CheckAllParams(build, {x, bias, gate});
}

class DropoutRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(DropoutRateSweep, MeanPreservedAcrossRates) {
  Rng rng(16);
  const double rate = GetParam();
  Tensor a = Tensor::Constant(Matrix(300, 300, 2.0));
  Tensor out = tensor::Dropout(a, rate, /*training=*/true, &rng);
  EXPECT_NEAR(out.value().Mean(), 2.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Rates, DropoutRateSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75));

}  // namespace
}  // namespace ams
