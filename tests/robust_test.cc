// Fault-tolerance suite: fault-spec parsing, CRC-protected atomic I/O,
// guarded training policies, checkpoint/resume for AMS training and HPO,
// retry-wrapped tasks, and the corrupt-cache regeneration fallback. Every
// fault here is injected deterministically via robust::FaultInjector, so
// the recovery paths run in CI on every build.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "ams/ams_model.h"
#include "data/cv.h"
#include "data/features.h"
#include "data/generator.h"
#include "graph/company_graph.h"
#include "la/stats.h"
#include "metrics/metrics.h"
#include "models/baselines.h"
#include "obs/metrics.h"
#include "models/experiment.h"
#include "models/hpo.h"
#include "par/thread_pool.h"
#include "robust/atomic_io.h"
#include "robust/checkpoint.h"
#include "robust/faults.h"
#include "robust/guard.h"
#include "robust/retry.h"

namespace ams {
namespace {

namespace fs = std::filesystem;

/// Every test leaves the process-wide injector disarmed, so test order
/// cannot leak armed faults across cases.
class RobustTest : public ::testing::Test {
 protected:
  void SetUp() override { robust::FaultInjector::Get().Disarm(); }
  void TearDown() override { robust::FaultInjector::Get().Disarm(); }

  std::string TempPath(const std::string& name) {
    const fs::path dir = fs::temp_directory_path() / "ams_robust_test";
    fs::create_directories(dir);
    return (dir / name).string();
  }
};

// --- Fault-spec grammar. ---

TEST_F(RobustTest, ParsesWellFormedFaultSpec) {
  auto faults = robust::ParseFaultSpec(
      "nan_grad@epoch=3;task_throw@index=7;io_truncate@write=2");
  ASSERT_TRUE(faults.ok()) << faults.status();
  ASSERT_EQ(faults.ValueOrDie().size(), 3u);
  EXPECT_EQ(faults.ValueOrDie()[0].kind, robust::FaultKind::kNanGrad);
  EXPECT_EQ(faults.ValueOrDie()[0].at, 3);
  EXPECT_EQ(faults.ValueOrDie()[1].kind, robust::FaultKind::kTaskThrow);
  EXPECT_EQ(faults.ValueOrDie()[1].at, 7);
  EXPECT_EQ(faults.ValueOrDie()[2].kind, robust::FaultKind::kIoTruncate);
  EXPECT_EQ(faults.ValueOrDie()[2].at, 2);
}

TEST_F(RobustTest, ParsesCrashKindsAndTolerantOfSpaces) {
  auto faults =
      robust::ParseFaultSpec("train_crash@epoch=5; hpo_crash@trial=1");
  ASSERT_TRUE(faults.ok()) << faults.status();
  ASSERT_EQ(faults.ValueOrDie().size(), 2u);
  EXPECT_EQ(faults.ValueOrDie()[0].kind, robust::FaultKind::kTrainCrash);
  EXPECT_EQ(faults.ValueOrDie()[1].kind, robust::FaultKind::kHpoCrash);
}

TEST_F(RobustTest, RejectsMalformedFaultSpecs) {
  EXPECT_FALSE(robust::ParseFaultSpec("").ok());
  EXPECT_FALSE(robust::ParseFaultSpec("nan_grad").ok());            // no @
  EXPECT_FALSE(robust::ParseFaultSpec("nan_grad@epoch").ok());      // no =
  EXPECT_FALSE(robust::ParseFaultSpec("warp_core@epoch=1").ok());   // kind
  EXPECT_FALSE(robust::ParseFaultSpec("nan_grad@write=1").ok());    // key
  EXPECT_FALSE(robust::ParseFaultSpec("nan_grad@epoch=x").ok());    // value
  EXPECT_FALSE(robust::ParseFaultSpec("nan_grad@epoch=-1").ok());   // sign
  EXPECT_FALSE(robust::ParseFaultSpec("nan_grad@epoch=1;;").ok());  // empty
}

TEST_F(RobustTest, ParsesNetworkKindsWithCommaSeparatorAndKeyDisambiguation) {
  // conn_drop names two injection points; the key picks one. ',' and ';'
  // are interchangeable separators.
  auto faults = robust::ParseFaultSpec(
      "conn_drop@accept=1,torn_frame@net_read=2;slow_peer@net_read=3,"
      "conn_drop@net_write=4");
  ASSERT_TRUE(faults.ok()) << faults.status();
  ASSERT_EQ(faults.ValueOrDie().size(), 4u);
  EXPECT_EQ(faults.ValueOrDie()[0].kind, robust::FaultKind::kConnDropAccept);
  EXPECT_EQ(faults.ValueOrDie()[1].kind, robust::FaultKind::kTornFrameRead);
  EXPECT_EQ(faults.ValueOrDie()[2].kind, robust::FaultKind::kSlowPeerRead);
  EXPECT_EQ(faults.ValueOrDie()[3].kind, robust::FaultKind::kConnDropWrite);
  EXPECT_EQ(faults.ValueOrDie()[3].at, 4);

  // A conn_drop with the wrong key must name the accepted ones.
  auto bad = robust::ParseFaultSpec("conn_drop@epoch=1");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("accept"), std::string::npos);
  EXPECT_NE(bad.status().message().find("net_write"), std::string::npos);
  EXPECT_FALSE(robust::ParseFaultSpec("torn_frame@read=1").ok());
}

TEST_F(RobustTest, NetworkQueryPointsFireAtCountedOrdinals) {
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector
                  .Configure("conn_drop@accept=1;torn_frame@net_read=0;"
                             "slow_peer@net_read=2;conn_drop@net_write=1")
                  .ok());
  EXPECT_FALSE(injector.OnAccept());
  EXPECT_TRUE(injector.OnAccept());
  EXPECT_FALSE(injector.OnAccept());  // one-shot

  auto read0 = injector.OnNetRead();
  EXPECT_TRUE(read0.torn);
  EXPECT_FALSE(read0.slow);
  auto read1 = injector.OnNetRead();
  EXPECT_FALSE(read1.torn);
  EXPECT_FALSE(read1.slow);
  auto read2 = injector.OnNetRead();
  EXPECT_FALSE(read2.torn);
  EXPECT_TRUE(read2.slow);

  EXPECT_FALSE(injector.OnNetWrite());
  EXPECT_TRUE(injector.OnNetWrite());
  EXPECT_FALSE(injector.OnNetWrite());
}

TEST_F(RobustTest, InjectorFiresEachFaultExactlyOnce) {
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("nan_grad@epoch=2").ok());
  EXPECT_TRUE(injector.AnyArmed());
  EXPECT_FALSE(injector.ShouldCorruptGradient(0));
  EXPECT_FALSE(injector.ShouldCorruptGradient(1));
  EXPECT_TRUE(injector.ShouldCorruptGradient(2));
  EXPECT_FALSE(injector.ShouldCorruptGradient(2));  // one-shot
  EXPECT_FALSE(injector.AnyArmed());
}

TEST_F(RobustTest, WriteOrdinalCountsEveryCall) {
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("io_truncate@write=2").ok());
  EXPECT_FALSE(injector.ShouldTruncateWrite());  // write 0
  EXPECT_FALSE(injector.ShouldTruncateWrite());  // write 1
  EXPECT_TRUE(injector.ShouldTruncateWrite());   // write 2
  EXPECT_FALSE(injector.ShouldTruncateWrite());
}

// --- CRC32 and atomic file I/O. ---

TEST_F(RobustTest, Crc32KnownAnswer) {
  // The IEEE CRC-32 check value (zlib, PNG, IEEE 802.3).
  EXPECT_EQ(robust::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(robust::Crc32(""), 0x00000000u);
}

TEST_F(RobustTest, AtomicWriteRoundTripsThroughVerifiedRead) {
  const std::string path = TempPath("roundtrip.txt");
  const std::string payload = "alpha,beta\n1,2\n";
  ASSERT_TRUE(robust::AtomicWriteFile(path, payload).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // temp staged file renamed away
  auto read = robust::ReadFileVerified(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read.ValueOrDie(), payload);
}

TEST_F(RobustTest, VerifiedReadRejectsCorruptPayload) {
  const std::string path = TempPath("corrupt.txt");
  ASSERT_TRUE(robust::AtomicWriteFile(path, "hello world\n").ok());
  // Flip one payload byte, leaving the footer intact.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(0);
  file.put('H');
  file.close();
  EXPECT_FALSE(robust::ReadFileVerified(path).ok());
}

TEST_F(RobustTest, VerifiedReadRejectsMissingFooterLenientAccepts) {
  const std::string path = TempPath("nofooter.txt");
  std::ofstream(path) << "legacy,artifact\n";
  EXPECT_FALSE(robust::ReadFileVerified(path).ok());
  auto lenient = robust::ReadFileLenient(path);
  ASSERT_TRUE(lenient.ok()) << lenient.status();
  EXPECT_EQ(lenient.ValueOrDie(), "legacy,artifact\n");
}

TEST_F(RobustTest, LenientReadStillRejectsBadFooter) {
  const std::string path = TempPath("badfooter.txt");
  std::ofstream(path) << "data\n" << "#crc32:deadbeef\n";
  EXPECT_FALSE(robust::ReadFileLenient(path).ok());
}

TEST_F(RobustTest, InjectedTruncationIsCaughtAtReadTime) {
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("io_truncate@write=0").ok());
  const std::string path = TempPath("truncated.txt");
  // The write itself "succeeds" — exactly like a torn write would — but
  // the footer covers the full payload, so the reader detects the tear.
  ASSERT_TRUE(
      robust::AtomicWriteFile(path, "0123456789abcdef0123456789abcdef").ok());
  EXPECT_FALSE(robust::ReadFileVerified(path).ok());
}

// --- Read-side faults (bit rot / short reads at load time). ---

TEST_F(RobustTest, ParsesReadFaultKinds) {
  auto faults = robust::ParseFaultSpec("bit_flip@read=2;partial_read@read=0");
  ASSERT_TRUE(faults.ok()) << faults.status();
  ASSERT_EQ(faults.ValueOrDie().size(), 2u);
  EXPECT_EQ(faults.ValueOrDie()[0].kind, robust::FaultKind::kBitFlipRead);
  EXPECT_EQ(faults.ValueOrDie()[0].at, 2);
  EXPECT_EQ(faults.ValueOrDie()[1].kind, robust::FaultKind::kPartialRead);
  // Read faults only accept the 'read' key.
  EXPECT_FALSE(robust::ParseFaultSpec("bit_flip@write=1").ok());
  EXPECT_FALSE(robust::ParseFaultSpec("partial_read@epoch=1").ok());
}

TEST_F(RobustTest, InjectedBitFlipIsCaughtByCrc) {
  auto& injector = robust::FaultInjector::Get();
  const std::string path = TempPath("bitflip.txt");
  const std::string payload = "0123456789abcdef0123456789abcdef";
  ASSERT_TRUE(robust::AtomicWriteFile(path, payload).ok());

  obs::Counter& injected = obs::MetricsRegistry::Get().GetCounter(
      "robust/faults_injected", {{"kind", "bit_flip"}});
  const uint64_t before = injected.value();
  ASSERT_TRUE(injector.Configure("bit_flip@read=0").ok());
  EXPECT_FALSE(robust::ReadFileVerified(path).ok());
  EXPECT_EQ(injected.value(), before + 1);

  // The fault fired once; the file itself is untouched.
  auto clean = robust::ReadFileVerified(path);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean.ValueOrDie(), payload);
}

TEST_F(RobustTest, InjectedPartialReadIsCaughtByCrc) {
  auto& injector = robust::FaultInjector::Get();
  const std::string path = TempPath("partialread.txt");
  const std::string payload = "0123456789abcdef0123456789abcdef";
  ASSERT_TRUE(robust::AtomicWriteFile(path, payload).ok());

  obs::Counter& injected = obs::MetricsRegistry::Get().GetCounter(
      "robust/faults_injected", {{"kind", "partial_read"}});
  const uint64_t before = injected.value();
  ASSERT_TRUE(injector.Configure("partial_read@read=0").ok());
  EXPECT_FALSE(robust::ReadFileVerified(path).ok());
  EXPECT_EQ(injected.value(), before + 1);

  auto clean = robust::ReadFileVerified(path);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean.ValueOrDie(), payload);
}

TEST_F(RobustTest, ReadOrdinalCountsEveryVerifiedRead) {
  auto& injector = robust::FaultInjector::Get();
  const std::string path = TempPath("readordinal.txt");
  ASSERT_TRUE(robust::AtomicWriteFile(path, "payload bytes here").ok());
  ASSERT_TRUE(injector.Configure("bit_flip@read=1").ok());
  EXPECT_TRUE(robust::ReadFileVerified(path).ok());   // read 0: clean
  EXPECT_FALSE(robust::ReadFileVerified(path).ok());  // read 1: flipped
  EXPECT_TRUE(robust::ReadFileVerified(path).ok());   // fired once only
}

TEST_F(RobustTest, LenientReadAlsoSubjectToReadFaults) {
  auto& injector = robust::FaultInjector::Get();
  const std::string path = TempPath("lenientfault.txt");
  ASSERT_TRUE(robust::AtomicWriteFile(path, "lenient payload data").ok());
  // A bit flip under a valid footer must fail even through the lenient
  // reader (present-but-mismatching footers are always an error).
  ASSERT_TRUE(injector.Configure("bit_flip@read=0").ok());
  EXPECT_FALSE(robust::ReadFileLenient(path).ok());
}

TEST_F(RobustTest, CsvRoundTripAndFooterInertForPlainReader) {
  const std::string path = TempPath("table.csv");
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  ASSERT_TRUE(robust::WriteCsvAtomic(path, table).ok());
  auto back = robust::ReadCsvVerified(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back.ValueOrDie().header, table.header);
  EXPECT_EQ(back.ValueOrDie().rows, table.rows);
  // The '#'-prefixed footer must not corrupt a plain ReadCsv: it shows up
  // as at most one junk row, never as a parse failure.
  auto plain = ReadCsv(path);
  ASSERT_TRUE(plain.ok());
  EXPECT_GE(plain.ValueOrDie().rows.size(), table.rows.size());
}

// --- util::WriteCsv short-write regression (satellite: flush + close
//     detection). /dev/full reports ENOSPC on flush; only meaningful on
//     systems that provide it. ---

TEST_F(RobustTest, WriteCsvDetectsShortWrite) {
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "/dev/full not available";
  CsvTable table;
  table.header = {"x"};
  for (int i = 0; i < 10000; ++i) table.rows.push_back({"0123456789"});
  EXPECT_FALSE(WriteCsv("/dev/full", table).ok());
}

// --- Checkpoint serialization. ---

TEST_F(RobustTest, CheckpointRoundTripsBitExactly) {
  robust::Checkpoint ckpt;
  ckpt.strings["fingerprint"] = "abc|def";
  ckpt.strings["empty"] = "";
  ckpt.scalars["pi"] = 3.141592653589793;
  ckpt.scalars["tiny"] = 5e-324;  // denormal survives the round trip
  ckpt.scalars["nan"] = std::numeric_limits<double>::quiet_NaN();
  ckpt.scalars["inf"] = std::numeric_limits<double>::infinity();
  la::Matrix m(2, 3);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) m(r, c) = 0.1 * (r * 3 + c) - 0.2;
  }
  ckpt.tensors["weights"] = m;
  Rng rng(99);
  rng.Normal();  // populate the cached Box-Muller deviate
  ckpt.PutRngState("rng", rng.SaveState());

  auto back = robust::DeserializeCheckpoint(robust::SerializeCheckpoint(ckpt));
  ASSERT_TRUE(back.ok()) << back.status();
  const robust::Checkpoint& restored = back.ValueOrDie();
  EXPECT_EQ(restored.strings.at("fingerprint"), "abc|def");
  EXPECT_EQ(restored.strings.at("empty"), "");
  EXPECT_DOUBLE_EQ(restored.scalars.at("pi"), 3.141592653589793);
  EXPECT_DOUBLE_EQ(restored.scalars.at("tiny"), 5e-324);
  EXPECT_TRUE(std::isnan(restored.scalars.at("nan")));
  EXPECT_TRUE(std::isinf(restored.scalars.at("inf")));
  ASSERT_EQ(restored.tensors.at("weights").rows(), 2);
  ASSERT_EQ(restored.tensors.at("weights").cols(), 3);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(restored.tensors.at("weights")(r, c), m(r, c));
    }
  }
  auto state = restored.GetRngState("rng");
  ASSERT_TRUE(state.ok());
  Rng replayed(0);
  replayed.LoadState(state.ValueOrDie());
  Rng reference(99);
  reference.Normal();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(replayed.NextU64(), reference.NextU64());
    EXPECT_DOUBLE_EQ(replayed.Normal(), reference.Normal());
  }
}

TEST_F(RobustTest, CheckpointLoadRejectsCorruptFiles) {
  const std::string path = TempPath("ckpt.bin");
  robust::Checkpoint ckpt;
  ckpt.strings["k"] = "v";
  ckpt.scalars["s"] = 1.5;
  ASSERT_TRUE(robust::SaveCheckpoint(path, ckpt).ok());
  ASSERT_TRUE(robust::LoadCheckpoint(path).ok());

  // Bad magic.
  EXPECT_FALSE(robust::DeserializeCheckpoint("NOTACKPT").ok());
  // Truncated blob.
  const std::string blob = robust::SerializeCheckpoint(ckpt);
  EXPECT_FALSE(
      robust::DeserializeCheckpoint(blob.substr(0, blob.size() / 2)).ok());
  // Torn file on disk: CRC catches it before deserialization runs.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(10);
  file.put('\xFF');
  file.close();
  EXPECT_FALSE(robust::LoadCheckpoint(path).ok());
  // Missing file is NotFound, not a crash.
  EXPECT_FALSE(robust::LoadCheckpoint(TempPath("absent.bin")).ok());
}

// --- Retry-wrapped tasks. ---

TEST_F(RobustTest, RetryRecoversFromInjectedThrow) {
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("task_throw@index=0").ok());
  int runs = 0;
  Status status = robust::RunWithRetry([&] { ++runs; });
  EXPECT_TRUE(status.ok()) << status;
  // Attempt 0 threw before fn ran; attempt 1 succeeded.
  EXPECT_EQ(runs, 1);
}

TEST_F(RobustTest, RetryExhaustionSurfacesLastError) {
  robust::RetryOptions options;
  options.max_attempts = 3;
  options.base_backoff_ms = 0;
  int attempts = 0;
  Status status = robust::RunWithRetry(
      [&] {
        ++attempts;
        throw std::runtime_error("persistent failure");
      },
      options);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_NE(status.ToString().find("persistent failure"), std::string::npos);
}

TEST_F(RobustTest, SubmitWithRetryResolvesOnPool) {
  par::ThreadPool pool(2);
  auto future = robust::SubmitWithRetry(pool, [] {});
  EXPECT_TRUE(future.get().ok());
}

TEST_F(RobustTest, PoolDeliversTaskExceptionThroughFutureAfterShutdown) {
  // Satellite contract: a task submitted before destruction still runs
  // (drain guarantee) and its exception survives the pool, delivered on
  // future::get() — never terminate().
  std::future<void> future;
  {
    par::ThreadPool pool(1);  // no workers: destructor drains inline
    future = pool.Submit([]() -> void {
      throw std::runtime_error("thrown during shutdown drain");
    });
  }
  EXPECT_THROW(future.get(), std::runtime_error);
}

// --- Numeric guards in stats and metrics (satellite audit). ---

TEST_F(RobustTest, StatsDegenerateInputsAreDefinedNotUb) {
  EXPECT_TRUE(std::isnan(la::Mean({})));
  EXPECT_TRUE(std::isnan(la::SampleVariance({})));
  EXPECT_TRUE(std::isnan(la::SampleVariance({1.0})));
  EXPECT_TRUE(std::isnan(la::SampleStdDev({1.0})));
  EXPECT_TRUE(std::isnan(la::PopulationStdDev({})));
  EXPECT_DOUBLE_EQ(la::PearsonCorrelation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(la::PearsonCorrelation({1.0}, {2.0}), 0.0);
  // Zero variance: correlation undefined -> 0, not NaN.
  EXPECT_DOUBLE_EQ(la::PearsonCorrelation({3.0, 3.0, 3.0}, {1.0, 2.0, 3.0}),
                   0.0);
  EXPECT_FALSE(la::PairedTTest({}, {}).ok());
  EXPECT_FALSE(la::PairedTTest({1.0}, {2.0}).ok());
  EXPECT_FALSE(la::OneSampleTTest({1.0}, 0.0).ok());
}

TEST_F(RobustTest, MetricsRejectEmptyAndGuardZeroUr) {
  EXPECT_FALSE(metrics::EvaluateAbsolute({}, {}).ok());
  EXPECT_FALSE(metrics::EvaluateAbsolute({1.0}, {}).ok());
  // |actual_ur| == 0: SR is capped, not infinite.
  auto eval = metrics::EvaluateAbsolute({1.0}, {0.0});
  ASSERT_TRUE(eval.ok());
  EXPECT_DOUBLE_EQ(eval.ValueOrDie().sr_values[0], 20.0);
  EXPECT_TRUE(std::isfinite(eval.ValueOrDie().sr));
}

// --- Guarded training on the real AMS model. ---

class RobustAmsTest : public RobustTest {
 protected:
  void SetUp() override {
    RobustTest::SetUp();
    data::GeneratorConfig config = data::GeneratorConfig::Defaults(
        data::DatasetProfile::kTransactionAmount, 42);
    config.num_companies = 24;
    config.num_sectors = 4;
    panel_ = data::GenerateMarket(config).MoveValue();

    data::FeatureBuilder builder(&panel_, data::FeatureOptions{});
    train_ = builder.Build({4, 5, 6, 7, 8}).MoveValue();
    valid_ = builder.Build({9}).MoveValue();
    test_ = builder.Build({10}).MoveValue();
    const data::Standardizer standardizer = data::Standardizer::Fit(train_);
    standardizer.Apply(&train_);
    standardizer.Apply(&valid_);
    standardizer.Apply(&test_);

    graph::CorrelationGraphOptions graph_options;
    graph_options.top_k = 3;
    graph_ = graph::CompanyGraph::BuildFromRevenue(
                 panel_.RevenueHistories(8), graph_options)
                 .MoveValue();
  }

  core::AmsConfig FastConfig() const {
    core::AmsConfig config;
    config.node_transform_layers = {16};
    config.gat.hidden_per_head = {4};
    config.gat.num_heads = 2;
    config.gat.out_features = 8;
    config.generator_hidden = {16};
    config.max_epochs = 20;
    config.patience = 20;
    return config;
  }

  std::vector<double> FitAndPredict(const core::AmsConfig& config) {
    core::AmsModel model(config);
    Status status = model.Fit(train_, valid_, graph_);
    EXPECT_TRUE(status.ok()) << status;
    return model.Predict(test_).MoveValue();
  }

  data::Panel panel_;
  data::Dataset train_, valid_, test_;
  graph::CompanyGraph graph_ = [] {
    return graph::CompanyGraph::BuildFromRevenue(
               {{1, 2, 3, 4}, {2, 3, 4, 5}},
               graph::CorrelationGraphOptions{1, true, 3})
        .MoveValue();
  }();
};

TEST_F(RobustAmsTest, AbortPolicyFailsOnInjectedNanGradient) {
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("nan_grad@epoch=3").ok());
  core::AmsConfig config = FastConfig();
  config.guard.policy = robust::GuardPolicy::kAbort;
  core::AmsModel model(config);
  Status status = model.Fit(train_, valid_, graph_);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("diverged"), std::string::npos);
}

TEST_F(RobustAmsTest, SkipPolicySurvivesInjectedNanGradient) {
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("nan_grad@epoch=3").ok());
  core::AmsConfig config = FastConfig();
  config.guard.policy = robust::GuardPolicy::kSkipStep;
  core::AmsModel model(config);
  Status status = model.Fit(train_, valid_, graph_);
  EXPECT_TRUE(status.ok()) << status;
  for (double p : model.Predict(test_).MoveValue()) {
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST_F(RobustAmsTest, RollbackPolicyIsBitIdenticalToFaultFreeRun) {
  // The acceptance property: a one-shot injected fault under rollback
  // leaves no trace — same epochs, same predictions, to the last bit.
  core::AmsConfig config = FastConfig();
  config.guard.policy = robust::GuardPolicy::kRollback;
  const std::vector<double> reference = FitAndPredict(config);

  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("nan_grad@epoch=3").ok());
  const std::vector<double> faulted = FitAndPredict(config);
  EXPECT_FALSE(injector.AnyArmed());  // the fault did fire
  ASSERT_EQ(faulted.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(faulted[i], reference[i]) << "prediction " << i;
  }
}

TEST_F(RobustAmsTest, TrainingResumesFromCheckpointBitIdentically) {
  core::AmsConfig config = FastConfig();
  config.checkpoint_path = TempPath("ams_resume.ckpt");
  config.checkpoint_every = 4;
  fs::remove(config.checkpoint_path);

  const std::vector<double> reference = FitAndPredict(config);
  EXPECT_FALSE(fs::exists(config.checkpoint_path));  // removed on success

  // Kill the run after epoch 9 (checkpoint at epoch 8 exists), then rerun.
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("train_crash@epoch=9").ok());
  core::AmsModel crashed(config);
  Status crash_status = crashed.Fit(train_, valid_, graph_);
  EXPECT_FALSE(crash_status.ok());
  EXPECT_NE(crash_status.ToString().find("injected"), std::string::npos);
  EXPECT_TRUE(fs::exists(config.checkpoint_path));

  injector.Disarm();
  const std::vector<double> resumed = FitAndPredict(config);
  ASSERT_EQ(resumed.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(resumed[i], reference[i]) << "prediction " << i;
  }
  EXPECT_FALSE(fs::exists(config.checkpoint_path));
}

TEST_F(RobustAmsTest, StaleCheckpointIsIgnoredNotConsumed) {
  core::AmsConfig config = FastConfig();
  config.checkpoint_path = TempPath("ams_stale.ckpt");
  config.checkpoint_every = 4;
  // A checkpoint from a different config must not poison this fit.
  robust::Checkpoint bogus;
  bogus.strings["fingerprint"] = "some other training run";
  ASSERT_TRUE(robust::SaveCheckpoint(config.checkpoint_path, bogus).ok());
  const std::vector<double> with_stale = FitAndPredict(config);
  fs::remove(config.checkpoint_path);
  const std::vector<double> fresh = FitAndPredict(config);
  ASSERT_EQ(with_stale.size(), fresh.size());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(with_stale[i], fresh[i]);
  }
}

// --- HPO crash/resume and retry. ---

class RobustHpoTest : public RobustAmsTest {
 protected:
  models::ModelSpec RidgeSpec() const {
    models::ModelSpec spec;
    spec.name = "RidgeProbe";
    spec.default_trials = 4;
    spec.factory = [](Rng* rng) -> std::unique_ptr<models::Regressor> {
      linear::LinearOptions options;
      options.l1_ratio = 0.0;
      options.alpha = rng->LogUniform(1e-4, 10.0);
      return std::make_unique<models::LinearRegressor>("RidgeProbe", options);
    };
    return spec;
  }

  models::FitContext Context() const {
    models::FitContext context;
    context.train = &train_;
    context.valid = &valid_;
    context.panel = &panel_;
    context.last_train_quarter = 8;
    return context;
  }
};

TEST_F(RobustHpoTest, SearchResumesAfterInjectedCrashBitIdentically) {
  models::HpoOptions options;
  options.trials = 4;
  options.seed = 17;
  options.checkpoint_dir = TempPath("hpo_ckpts");
  fs::remove_all(options.checkpoint_dir);
  fs::create_directories(options.checkpoint_dir);

  auto reference = models::RandomSearch(RidgeSpec(), Context(), options);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Crash after two trials completed + checkpointed; rerun resumes them.
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("hpo_crash@trial=2").ok());
  auto crashed = models::RandomSearch(RidgeSpec(), Context(), options);
  EXPECT_FALSE(crashed.ok());
  injector.Disarm();

  auto resumed = models::RandomSearch(RidgeSpec(), Context(), options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_GT(resumed.ValueOrDie().trials_resumed, 0);
  EXPECT_EQ(resumed.ValueOrDie().valid_rmse,
            reference.ValueOrDie().valid_rmse);
  // The resumed winner is re-fit from its recorded RNG stream; its
  // predictions must equal the uninterrupted run's bit for bit.
  auto ref_pred = reference.ValueOrDie().model->PredictNorm(test_);
  auto res_pred = resumed.ValueOrDie().model->PredictNorm(test_);
  ASSERT_TRUE(ref_pred.ok() && res_pred.ok());
  ASSERT_EQ(ref_pred.ValueOrDie().size(), res_pred.ValueOrDie().size());
  for (size_t i = 0; i < ref_pred.ValueOrDie().size(); ++i) {
    EXPECT_EQ(res_pred.ValueOrDie()[i], ref_pred.ValueOrDie()[i]);
  }
  fs::remove_all(options.checkpoint_dir);
}

TEST_F(RobustHpoTest, ThrownTrialIsRetriedAndResultUnchanged) {
  models::HpoOptions options;
  options.trials = 4;
  options.seed = 17;
  auto reference = models::RandomSearch(RidgeSpec(), Context(), options);
  ASSERT_TRUE(reference.ok()) << reference.status();

  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("task_throw@index=1").ok());
  auto faulted = models::RandomSearch(RidgeSpec(), Context(), options);
  ASSERT_TRUE(faulted.ok()) << faulted.status();
  EXPECT_FALSE(injector.AnyArmed());  // the throw fired and was absorbed
  EXPECT_EQ(faulted.ValueOrDie().valid_rmse,
            reference.ValueOrDie().valid_rmse);
  EXPECT_EQ(faulted.ValueOrDie().trials_failed, 0);
}

// --- Corrupt experiment cache falls back to regeneration. ---

TEST_F(RobustTest, CorruptExperimentCacheRegeneratesInsteadOfFailing) {
  const std::string cache_dir =
      (fs::temp_directory_path() / "ams_robust_cache_test").string();
  fs::remove_all(cache_dir);
  models::ExperimentConfig config;
  config.profile = data::DatasetProfile::kTransactionAmount;
  config.seed = 4242;
  config.hpo_trials = 1;
  config.model_filter = {"Ridge", "QoQ"};
  auto first = models::RunExperimentCached(config, cache_dir);
  ASSERT_TRUE(first.ok()) << first.status();

  // Truncate the cache file in place: the CRC footer no longer matches.
  std::string cache_path;
  for (const auto& entry : fs::directory_iterator(cache_dir)) {
    cache_path = entry.path().string();
  }
  ASSERT_FALSE(cache_path.empty());
  const auto original_size = fs::file_size(cache_path);
  fs::resize_file(cache_path, original_size / 2);

  auto second = models::RunExperimentCached(config, cache_dir);
  ASSERT_TRUE(second.ok()) << second.status();
  // Regenerated from scratch: same deterministic result, cache rewritten
  // whole.
  EXPECT_EQ(fs::file_size(cache_path), original_size);
  ASSERT_EQ(first.ValueOrDie().models.size(),
            second.ValueOrDie().models.size());
  for (size_t m = 0; m < first.ValueOrDie().models.size(); ++m) {
    const auto& a = first.ValueOrDie().models[m];
    const auto& b = second.ValueOrDie().models[m];
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.folds.size(), b.folds.size());
    for (size_t f = 0; f < a.folds.size(); ++f) {
      EXPECT_NEAR(a.folds[f].eval.ba, b.folds[f].eval.ba, 1e-9);
      EXPECT_NEAR(a.folds[f].eval.sr, b.folds[f].eval.sr, 1e-9);
    }
  }
  fs::remove_all(cache_dir);
}

// --- Guard policy parsing. ---

TEST_F(RobustTest, ParsesGuardPolicies) {
  EXPECT_EQ(robust::ParseGuardPolicy("abort").ValueOrDie(),
            robust::GuardPolicy::kAbort);
  EXPECT_EQ(robust::ParseGuardPolicy("skip").ValueOrDie(),
            robust::GuardPolicy::kSkipStep);
  EXPECT_EQ(robust::ParseGuardPolicy("rollback").ValueOrDie(),
            robust::GuardPolicy::kRollback);
  EXPECT_FALSE(robust::ParseGuardPolicy("panic").ok());
  EXPECT_FALSE(robust::ParseGuardPolicy("").ok());
}

}  // namespace
}  // namespace ams
