// Unit tests for the telemetry subsystem (src/obs) and the logging
// satellites: instrument semantics, concurrent exactness, span nesting,
// report shapes, AMS_TELEMETRY=off silence, and AMS_LOG short-circuiting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ams::obs {
namespace {

// ---------------------------------------------------------------------------
// Instrument semantics.

TEST(CounterTest, IncrementAndAdd) {
  Counter counter("test/counter");
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge("test/gauge");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

TEST(HistogramTest, BucketPlacement) {
  Histogram histogram("test/hist", {1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(1.0);    // bucket 0 (boundary is inclusive)
  histogram.Observe(5.0);    // bucket 1
  histogram.Observe(50.0);   // bucket 2
  histogram.Observe(1e6);    // overflow bucket
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 5.0 + 50.0 + 1e6);
  const std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, ExponentialBoundsAreSortedAndPositive) {
  const std::vector<double> bounds = Histogram::ExponentialBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_GT(bounds.front(), 0.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(RegistryTest, LazyRegistrationReturnsSameInstrument) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter& a = registry.GetCounter("registry_test/lazy");
  Counter& b = registry.GetCounter("registry_test/lazy");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.value(), 7u);

  Histogram& h1 = registry.GetHistogram("registry_test/hist", {1.0, 2.0});
  Histogram& h2 = registry.GetHistogram("registry_test/hist", {9.0});
  EXPECT_EQ(&h1, &h2);  // bounds only consulted on first registration
  EXPECT_EQ(h2.bucket_bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotContainsRegisteredInstruments) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("snapshot_test/counter").Add(3);
  registry.GetGauge("snapshot_test/gauge").Set(2.5);
  registry.GetHistogram("snapshot_test/hist", {1.0}).Observe(0.5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  bool found_counter = false;
  bool found_gauge = false;
  bool found_hist = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "snapshot_test/counter") {
      found_counter = true;
      EXPECT_EQ(counter.value, 3u);
    }
  }
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "snapshot_test/gauge") {
      found_gauge = true;
      EXPECT_EQ(gauge.value, 2.5);
    }
  }
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "snapshot_test/hist") {
      found_hist = true;
      EXPECT_EQ(histogram.count, 1u);
      EXPECT_EQ(histogram.bucket_counts.size(),
                histogram.bucket_bounds.size() + 1);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_gauge);
  EXPECT_TRUE(found_hist);
  // Snapshots are sorted by name for stable reports.
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LE(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: exact totals under parallel mutation (run under
// -DAMS_SANITIZE=thread to validate the lock-free fast path).

TEST(RegistryTest, ConcurrentCounterIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter& counter = registry.GetCounter("concurrent_test/counter");
  counter.Reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      // Half the threads also exercise lazy lookup to stress registration.
      Counter& same =
          MetricsRegistry::Get().GetCounter("concurrent_test/counter");
      for (int i = 0; i < kIncrementsPerThread; ++i) same.Increment();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(RegistryTest, ConcurrentHistogramObservationsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kObservationsPerThread = 5000;
  Histogram& histogram = MetricsRegistry::Get().GetHistogram(
      "concurrent_test/hist", {0.5, 1.5, 2.5});
  histogram.Reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&histogram, t] {
      for (int i = 0; i < kObservationsPerThread; ++i) {
        histogram.Observe(static_cast<double>(t % 4));  // buckets 0..3
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const uint64_t expected =
      static_cast<uint64_t>(kThreads) * kObservationsPerThread;
  EXPECT_EQ(histogram.count(), expected);
  uint64_t bucket_total = 0;
  for (uint64_t c : histogram.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, expected);
  // Sum is CAS-accumulated: every observation lands exactly once.
  // Each thread contributes kObservationsPerThread * (t % 4).
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<double>(t % 4) * kObservationsPerThread;
  }
  EXPECT_DOUBLE_EQ(histogram.sum(), expected_sum);
}

// ---------------------------------------------------------------------------
// Trace spans.

TEST(TraceTest, SpanRecordsHistogramAndNesting) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  Histogram& outer_hist =
      MetricsRegistry::Get().GetHistogram(std::string("trace_test/outer") +
                                          "/ms");
  outer_hist.Reset();

  {
    AMS_TRACE_SPAN("trace_test/outer");
    {
      AMS_TRACE_SPAN("trace_test/inner");
    }
    {
      AMS_TRACE_SPAN("trace_test/inner");
    }
  }
  buffer.SetEnabled(false);

  EXPECT_EQ(outer_hist.count(), 1u);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);  // spans complete innermost-first
  EXPECT_STREQ(spans[0].name, "trace_test/inner");
  EXPECT_STREQ(spans[1].name, "trace_test/inner");
  EXPECT_STREQ(spans[2].name, "trace_test/outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 0u);
  // Children are contained in the parent's [start, start + duration].
  for (int child : {0, 1}) {
    EXPECT_GE(spans[child].start_us, spans[2].start_us);
    EXPECT_LE(spans[child].start_us + spans[child].duration_us,
              spans[2].start_us + spans[2].duration_us);
  }
  EXPECT_EQ(internal::CurrentSpanDepth(), 0u);
}

TEST(TraceTest, DisabledBufferRecordsNothing) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(false);
  {
    AMS_TRACE_SPAN("trace_test/disabled");
  }
  EXPECT_TRUE(buffer.Snapshot().empty());
  // The timing histogram still records (always-on metrics path).
  EXPECT_GE(MetricsRegistry::Get()
                .GetHistogram("trace_test/disabled/ms")
                .count(),
            1u);
}

TEST(TraceTest, BufferCapacityDropsOldest) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetCapacity(2);
  buffer.SetEnabled(true);
  for (int i = 0; i < 5; ++i) {
    AMS_TRACE_SPAN("trace_test/capacity");
  }
  buffer.SetEnabled(false);
  EXPECT_EQ(buffer.Snapshot().size(), 2u);
  buffer.SetCapacity(1 << 20);
  buffer.Clear();
}

// ---------------------------------------------------------------------------
// JSON well-formedness. A minimal structural validator: balanced
// brackets/braces outside strings, no trailing garbage.

bool JsonIsBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return stack.empty() && !in_string;
}

TEST(TraceTest, ChromeTraceJsonShape) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  {
    AMS_TRACE_SPAN("trace_test/json_outer");
    AMS_TRACE_SPAN("trace_test/json_inner");
  }
  buffer.SetEnabled(false);

  std::ostringstream out;
  TraceExporter::WriteJson(out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  // Chrome trace-event format essentials: a traceEvents array of complete
  // ("X") events carrying ts/dur/pid/tid.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("trace_test/json_outer"), std::string::npos);
  EXPECT_NE(json.find("trace_test/json_inner"), std::string::npos);
  buffer.Clear();
}

TEST(ReportTest, JsonSnapshotRoundTripShape) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("report_test/counter").Add(11);
  registry.GetGauge("report_test/gauge").Set(0.5);
  registry.GetHistogram("report_test/hist", {1.0, 2.0}).Observe(1.5);

  std::ostringstream out;
  WriteJsonReport(registry.Snapshot(), out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"report_test/counter\":11"), std::string::npos);
  EXPECT_NE(json.find("\"report_test/gauge\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"report_test/hist\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"le\":2,\"count\":1"), std::string::npos);
}

TEST(ReportTest, TextReportContainsInstruments) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("text_report_test/counter").Add(5);
  std::ostringstream out;
  WriteTextReport(registry.Snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("telemetry report"), std::string::npos);
  EXPECT_NE(text.find("text_report_test/counter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// AMS_TELEMETRY env handling and off-mode silence.

TEST(ReportTest, TelemetryModeFromEnv) {
  ::setenv("AMS_TELEMETRY", "text", 1);
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kText);
  ::setenv("AMS_TELEMETRY", "json", 1);
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kJson);
  ::setenv("AMS_TELEMETRY", "off", 1);
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kOff);
  ::setenv("AMS_TELEMETRY", "bogus", 1);
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kOff);
  ::unsetenv("AMS_TELEMETRY");
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kOff);
}

TEST(ReportTest, OffModeEmitsNothing) {
  // Even with registered, non-zero instruments, kOff must write zero bytes.
  MetricsRegistry::Get().GetCounter("off_test/counter").Add(1);
  std::ostringstream out;
  FlushReport(TelemetryMode::kOff, out);
  EXPECT_TRUE(out.str().empty());
}

// ---------------------------------------------------------------------------
// Logging satellites.

TEST(LoggingTest, SinkCapturesOutput) {
  std::ostringstream capture;
  SetLogSink(&capture);
  AMS_LOG(Warning) << "captured " << 42;
  SetLogSink(nullptr);
  const std::string line = capture.str();
  EXPECT_NE(line.find("[WARN"), std::string::npos);
  EXPECT_NE(line.find("captured 42"), std::string::npos);
  EXPECT_NE(line.find("obs_test.cc"), std::string::npos);
}

TEST(LoggingTest, TimestampPrefixIsOptional) {
  std::ostringstream capture;
  SetLogSink(&capture);
  AMS_LOG(Warning) << "plain";
  const std::string plain = capture.str();
  EXPECT_EQ(plain.find("[WARN"), 0u);  // no prefix before the level tag

  capture.str("");
  SetLogTimestamps(true);
  AMS_LOG(Warning) << "stamped";
  SetLogTimestamps(false);
  SetLogSink(nullptr);
  const std::string stamped = capture.str();
  // "HH:MM:SS.mmm tN [WARN ...": the level tag no longer leads the line.
  EXPECT_GT(stamped.find("[WARN"), 0u);
  EXPECT_EQ(stamped[2], ':');
  EXPECT_EQ(stamped[5], ':');
  EXPECT_EQ(stamped[8], '.');
  EXPECT_NE(stamped.find(" t"), std::string::npos);
}

TEST(LoggingTest, DisabledLevelSkipsArgumentEvaluation) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  std::ostringstream capture;
  SetLogSink(&capture);
  int evaluations = 0;
  auto side_effect = [&evaluations] {
    ++evaluations;
    return "evaluated";
  };
  AMS_LOG(Debug) << side_effect();  // below threshold: must not evaluate
  AMS_LOG(Info) << side_effect();   // below threshold: must not evaluate
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(capture.str().empty());

  AMS_LOG(Error) << side_effect();  // enabled: evaluates and logs
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(capture.str().find("evaluated"), std::string::npos);
  SetLogSink(nullptr);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace ams::obs
