// Unit tests for the telemetry subsystem (src/obs) and the logging
// satellites: instrument semantics (labeled and not), percentile
// estimation, concurrent exactness, span nesting, report shapes and JSON
// hardening, the periodic JSONL reporter, the run ledger, AMS_TELEMETRY=off
// silence, and AMS_LOG short-circuiting.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "obs/json_parse.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/periodic.h"
#include "obs/profiler.h"
#include "obs/prometheus.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ams::obs {
namespace {

// ---------------------------------------------------------------------------
// Instrument semantics.

TEST(CounterTest, IncrementAndAdd) {
  Counter counter("test/counter");
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge("test/gauge");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

TEST(HistogramTest, BucketPlacement) {
  Histogram histogram("test/hist", {1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (<= 1)
  histogram.Observe(1.0);    // bucket 0 (boundary is inclusive)
  histogram.Observe(5.0);    // bucket 1
  histogram.Observe(50.0);   // bucket 2
  histogram.Observe(1e6);    // overflow bucket
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 5.0 + 50.0 + 1e6);
  const std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, ExponentialBoundsAreSortedAndPositive) {
  const std::vector<double> bounds = Histogram::ExponentialBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_GT(bounds.front(), 0.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(RegistryTest, LazyRegistrationReturnsSameInstrument) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter& a = registry.GetCounter("registry_test/lazy");
  Counter& b = registry.GetCounter("registry_test/lazy");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.value(), 7u);

  Histogram& h1 = registry.GetHistogram("registry_test/hist", std::vector<double>{1.0, 2.0});
  Histogram& h2 = registry.GetHistogram("registry_test/hist", std::vector<double>{9.0});
  EXPECT_EQ(&h1, &h2);  // bounds only consulted on first registration
  EXPECT_EQ(h2.bucket_bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotContainsRegisteredInstruments) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("snapshot_test/counter").Add(3);
  registry.GetGauge("snapshot_test/gauge").Set(2.5);
  registry.GetHistogram("snapshot_test/hist", std::vector<double>{1.0}).Observe(0.5);

  const MetricsSnapshot snapshot = registry.Snapshot();
  bool found_counter = false;
  bool found_gauge = false;
  bool found_hist = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "snapshot_test/counter") {
      found_counter = true;
      EXPECT_EQ(counter.value, 3u);
    }
  }
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == "snapshot_test/gauge") {
      found_gauge = true;
      EXPECT_EQ(gauge.value, 2.5);
    }
  }
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "snapshot_test/hist") {
      found_hist = true;
      EXPECT_EQ(histogram.count, 1u);
      EXPECT_EQ(histogram.bucket_counts.size(),
                histogram.bucket_bounds.size() + 1);
    }
  }
  EXPECT_TRUE(found_counter);
  EXPECT_TRUE(found_gauge);
  EXPECT_TRUE(found_hist);
  // Snapshots are sorted by name for stable reports.
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LE(snapshot.counters[i - 1].name, snapshot.counters[i].name);
  }
}

// ---------------------------------------------------------------------------
// Labeled instruments.

TEST(LabelsTest, EncodeLabeledNameIsCanonical) {
  EXPECT_EQ(EncodeLabeledName("hits", {}), "hits");
  EXPECT_EQ(EncodeLabeledName("hits", {{"model", "AMS"}}),
            "hits{model=\"AMS\"}");
  // Keys sort; insertion order of the label set does not matter.
  EXPECT_EQ(EncodeLabeledName("hits", {{"b", "2"}, {"a", "1"}}),
            EncodeLabeledName("hits", {{"a", "1"}, {"b", "2"}}));
  EXPECT_EQ(EncodeLabeledName("hits", {{"b", "2"}, {"a", "1"}}),
            "hits{a=\"1\",b=\"2\"}");
}

TEST(LabelsTest, SameLabelSetInternsToSameInstrument) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter& a = registry.GetCounter("labels_test/hits", {{"model", "AMS"}});
  Counter& b = registry.GetCounter("labels_test/hits", {{"model", "AMS"}});
  Counter& other =
      registry.GetCounter("labels_test/hits", {{"model", "Ridge"}});
  Counter& plain = registry.GetCounter("labels_test/hits");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  EXPECT_NE(&a, &plain);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(other.value(), 0u);

  // Order-insensitive across multiple keys; empty labels == unlabeled.
  Gauge& g1 = registry.GetGauge("labels_test/gauge",
                                {{"k1", "v1"}, {"k2", "v2"}});
  Gauge& g2 = registry.GetGauge("labels_test/gauge",
                                {{"k2", "v2"}, {"k1", "v1"}});
  EXPECT_EQ(&g1, &g2);
  EXPECT_EQ(&registry.GetCounter("labels_test/hits", Labels{}), &plain);
}

TEST(LabelsTest, LabeledInstrumentsAppearInSnapshotUnderEncodedName) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("labels_snap/hits", {{"model", "XGBoost"}}).Add(5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  bool found = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "labels_snap/hits{model=\"XGBoost\"}") {
      found = true;
      EXPECT_EQ(counter.value, 5u);
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Percentile estimation from bucket counts.

TEST(PercentileTest, InterpolatesWithinBuckets) {
  MetricsSnapshot::HistogramValue h;
  h.bucket_bounds = {10.0, 20.0, 30.0, 40.0};
  h.bucket_counts = {10, 10, 10, 10, 0};  // ~uniform over (0, 40]
  h.count = 40;
  EXPECT_NEAR(h.Percentile(0.50), 20.0, 1e-9);
  EXPECT_NEAR(h.Percentile(0.95), 38.0, 1e-9);
  EXPECT_NEAR(h.Percentile(0.99), 39.6, 1e-9);
  // Quantiles never decrease in q.
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = h.Percentile(q);
    EXPECT_GE(value, prev);
    prev = value;
  }
}

TEST(PercentileTest, EdgeCases) {
  MetricsSnapshot::HistogramValue empty;
  empty.bucket_bounds = {1.0};
  empty.bucket_counts = {0, 0};
  EXPECT_EQ(empty.Percentile(0.5), 0.0);

  // Everything in the overflow bucket: the estimate cannot extrapolate past
  // the largest finite bound.
  MetricsSnapshot::HistogramValue overflow;
  overflow.bucket_bounds = {1.0, 2.0};
  overflow.bucket_counts = {0, 0, 7};
  overflow.count = 7;
  EXPECT_EQ(overflow.Percentile(0.5), 2.0);
  EXPECT_EQ(overflow.Percentile(0.99), 2.0);

  // Single bucket with a negative bound: the lower edge follows the bound.
  MetricsSnapshot::HistogramValue negative;
  negative.bucket_bounds = {-5.0};
  negative.bucket_counts = {4, 0};
  negative.count = 4;
  EXPECT_LE(negative.Percentile(0.5), -0.0);
  EXPECT_GE(negative.Percentile(0.5), -5.0);
}

TEST(PercentileTest, LiveHistogramMatchesKnownData) {
  Histogram histogram("percentile_live", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) {
    histogram.Observe(0.5);  // all land in bucket 0
  }
  MetricsSnapshot::HistogramValue view;
  view.count = histogram.count();
  view.sum = histogram.sum();
  view.bucket_bounds = histogram.bucket_bounds();
  view.bucket_counts = histogram.bucket_counts();
  // All mass in (0, 1]: p50 interpolates to the middle of that bucket.
  EXPECT_NEAR(view.Percentile(0.5), 0.5, 1e-9);
  EXPECT_LE(view.Percentile(0.99), 1.0);
}

// ---------------------------------------------------------------------------
// Histogram input hardening: NaN dropped, negatives clamped, both counted.

TEST(HistogramTest, NanAndNegativeObservationsDoNotCorruptBuckets) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter& dropped = registry.GetCounter("obs/dropped_observations");
  const uint64_t dropped_before = dropped.value();

  Histogram histogram("guard_test", {1.0, 10.0});
  histogram.Observe(std::numeric_limits<double>::quiet_NaN());  // dropped
  histogram.Observe(-3.0);  // clamped to 0, still counted
  histogram.Observe(5.0);   // normal

  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 5.0);  // clamp contributes 0
  EXPECT_FALSE(std::isnan(histogram.sum()));
  const std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);  // the clamped -3 -> 0
  EXPECT_EQ(counts[1], 1u);  // the 5
  EXPECT_EQ(counts[2], 0u);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  EXPECT_EQ(total, histogram.count());
  EXPECT_EQ(dropped.value(), dropped_before + 2);
}

// ---------------------------------------------------------------------------
// Concurrency: exact totals under parallel mutation (run under
// -DAMS_SANITIZE=thread to validate the lock-free fast path).

TEST(RegistryTest, ConcurrentCounterIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  MetricsRegistry& registry = MetricsRegistry::Get();
  Counter& counter = registry.GetCounter("concurrent_test/counter");
  counter.Reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      // Half the threads also exercise lazy lookup to stress registration.
      Counter& same =
          MetricsRegistry::Get().GetCounter("concurrent_test/counter");
      for (int i = 0; i < kIncrementsPerThread; ++i) same.Increment();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(RegistryTest, ConcurrentHistogramObservationsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kObservationsPerThread = 5000;
  Histogram& histogram = MetricsRegistry::Get().GetHistogram(
      "concurrent_test/hist", {0.5, 1.5, 2.5});
  histogram.Reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&histogram, t] {
      for (int i = 0; i < kObservationsPerThread; ++i) {
        histogram.Observe(static_cast<double>(t % 4));  // buckets 0..3
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const uint64_t expected =
      static_cast<uint64_t>(kThreads) * kObservationsPerThread;
  EXPECT_EQ(histogram.count(), expected);
  uint64_t bucket_total = 0;
  for (uint64_t c : histogram.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, expected);
  // Sum is CAS-accumulated: every observation lands exactly once.
  // Each thread contributes kObservationsPerThread * (t % 4).
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<double>(t % 4) * kObservationsPerThread;
  }
  EXPECT_DOUBLE_EQ(histogram.sum(), expected_sum);
}

// ---------------------------------------------------------------------------
// Trace spans.

TEST(TraceTest, SpanRecordsHistogramAndNesting) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  Histogram& outer_hist =
      MetricsRegistry::Get().GetHistogram(std::string("trace_test/outer") +
                                          "/ms");
  outer_hist.Reset();

  {
    AMS_TRACE_SPAN("trace_test/outer");
    {
      AMS_TRACE_SPAN("trace_test/inner");
    }
    {
      AMS_TRACE_SPAN("trace_test/inner");
    }
  }
  buffer.SetEnabled(false);

  EXPECT_EQ(outer_hist.count(), 1u);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 3u);  // spans complete innermost-first
  EXPECT_STREQ(spans[0].name, "trace_test/inner");
  EXPECT_STREQ(spans[1].name, "trace_test/inner");
  EXPECT_STREQ(spans[2].name, "trace_test/outer");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 0u);
  // Children are contained in the parent's [start, start + duration].
  for (int child : {0, 1}) {
    EXPECT_GE(spans[child].start_us, spans[2].start_us);
    EXPECT_LE(spans[child].start_us + spans[child].duration_us,
              spans[2].start_us + spans[2].duration_us);
  }
  EXPECT_EQ(internal::CurrentSpanDepth(), 0u);
}

TEST(TraceTest, DisabledBufferRecordsNothing) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(false);
  {
    AMS_TRACE_SPAN("trace_test/disabled");
  }
  EXPECT_TRUE(buffer.Snapshot().empty());
  // The timing histogram still records (always-on metrics path).
  EXPECT_GE(MetricsRegistry::Get()
                .GetHistogram("trace_test/disabled/ms")
                .count(),
            1u);
}

TEST(TraceTest, BufferCapacityDropsOldest) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetCapacity(2);
  buffer.SetEnabled(true);
  for (int i = 0; i < 5; ++i) {
    AMS_TRACE_SPAN("trace_test/capacity");
  }
  buffer.SetEnabled(false);
  EXPECT_EQ(buffer.Snapshot().size(), 2u);
  buffer.SetCapacity(1 << 20);
  buffer.Clear();
}

// ---------------------------------------------------------------------------
// Trace context: parent links, cross-thread handoff, flow events.

/// Finds the single span named `name` in `spans`; fails the test on 0 or >1.
const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  const SpanRecord* found = nullptr;
  for (const SpanRecord& span : spans) {
    if (span.name == name) {
      if (found != nullptr) return nullptr;
      found = &span;
    }
  }
  return found;
}

TEST(TraceContextTest, NestingAssignsParentAndTraceIds) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  EXPECT_FALSE(CurrentTraceContext().valid());
  {
    AMS_TRACE_SPAN("ctx_test/root");
    const TraceContext root_ctx = CurrentTraceContext();
    EXPECT_TRUE(root_ctx.valid());
    {
      AMS_TRACE_SPAN("ctx_test/child");
      const TraceContext child_ctx = CurrentTraceContext();
      EXPECT_EQ(child_ctx.trace_id, root_ctx.trace_id);
      EXPECT_NE(child_ctx.span_id, root_ctx.span_id);
    }
    // Context pops back to the root when the child closes.
    EXPECT_EQ(CurrentTraceContext().span_id, root_ctx.span_id);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
  buffer.SetEnabled(false);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  const SpanRecord* root = FindSpan(spans, "ctx_test/root");
  const SpanRecord* child = FindSpan(spans, "ctx_test/child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_NE(root->span_id, 0u);
  EXPECT_EQ(root->trace_id, root->span_id);  // a root roots its own trace
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(child->trace_id, root->trace_id);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_NE(child->span_id, root->span_id);
  buffer.Clear();
}

TEST(TraceContextTest, ExplicitHandoffCrossesThreads) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  {
    AMS_TRACE_SPAN("ctx_test/producer");
    const TraceContext ctx = CurrentTraceContext();
    std::thread consumer([ctx] {
      // Fresh thread: empty stack, so without the handoff this span would
      // root a new trace.
      AMS_TRACE_SPAN_CTX("ctx_test/consumer", ctx);
    });
    consumer.join();
  }
  buffer.SetEnabled(false);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  const SpanRecord* producer = FindSpan(spans, "ctx_test/producer");
  const SpanRecord* consumer = FindSpan(spans, "ctx_test/consumer");
  ASSERT_NE(producer, nullptr);
  ASSERT_NE(consumer, nullptr);
  EXPECT_EQ(consumer->trace_id, producer->trace_id);
  EXPECT_EQ(consumer->parent_id, producer->span_id);
  EXPECT_NE(consumer->thread_id, producer->thread_id);
  buffer.Clear();
}

TEST(TraceContextTest, ContextScopeParentsSpansWithoutOpeningOne) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  TraceContext ctx;
  {
    AMS_TRACE_SPAN("ctx_test/origin");
    ctx = CurrentTraceContext();
  }
  {
    TraceContextScope scope(ctx);  // borrowed context, no span of its own
    EXPECT_EQ(CurrentTraceContext().span_id, ctx.span_id);
    AMS_TRACE_SPAN("ctx_test/borrowed_child");
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
  {
    TraceContextScope noop{TraceContext{}};  // invalid context: no-op
    EXPECT_FALSE(CurrentTraceContext().valid());
  }
  buffer.SetEnabled(false);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  const SpanRecord* origin = FindSpan(spans, "ctx_test/origin");
  const SpanRecord* child = FindSpan(spans, "ctx_test/borrowed_child");
  ASSERT_NE(origin, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->trace_id, origin->trace_id);
  EXPECT_EQ(child->parent_id, origin->span_id);
  buffer.Clear();
}

TEST(TraceContextTest, RecordSpanWithParentReplaysIntervalWithArg) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  TraceContext parent;
  {
    AMS_TRACE_SPAN("ctx_test/request");
    parent = CurrentTraceContext();
  }
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::microseconds(1500);
  const TraceContext recorded =
      RecordSpanWithParent("ctx_test/phase", parent, start, end, /*arg=*/7);
  EXPECT_TRUE(recorded.valid());
  EXPECT_EQ(recorded.trace_id, parent.trace_id);
  buffer.SetEnabled(false);

  const std::vector<SpanRecord> spans = buffer.Snapshot();
  const SpanRecord* phase = FindSpan(spans, "ctx_test/phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->trace_id, parent.trace_id);
  EXPECT_EQ(phase->parent_id, parent.span_id);
  EXPECT_EQ(phase->arg, 7u);
  EXPECT_GE(phase->duration_us, 1400u);
  EXPECT_LE(phase->duration_us, 1600u);
  // No "<name>/ms" histogram: callers own their phase histograms.
  EXPECT_EQ(MetricsRegistry::Get().GetHistogram("ctx_test/phase/ms").count(),
            0u);
  buffer.Clear();

  // Disabled buffer: no record, invalid context back.
  EXPECT_FALSE(
      RecordSpanWithParent("ctx_test/phase", parent, start, end).valid());
  EXPECT_TRUE(buffer.Snapshot().empty());
}

TEST(TraceContextTest, ExporterEmitsFlowEventsForCrossThreadEdges) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  {
    AMS_TRACE_SPAN("flow_test/root");
    const TraceContext ctx = CurrentTraceContext();
    std::thread worker([ctx] { AMS_TRACE_SPAN_CTX("flow_test/hop", ctx); });
    worker.join();
  }
  buffer.SetEnabled(false);
  const std::vector<SpanRecord> spans = buffer.Snapshot();
  const SpanRecord* root = FindSpan(spans, "flow_test/root");
  const SpanRecord* hop = FindSpan(spans, "flow_test/hop");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(hop, nullptr);

  std::ostringstream out;
  TraceExporter::WriteJson(spans, out);
  auto parsed = json::Parse(out.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed.ValueOrDie().Find("traceEvents");
  ASSERT_NE(events, nullptr);

  // One "s"/"f" pair keyed by the child span id, start on the parent's
  // thread lane, finish on the child's; "X" events carry the ids in args.
  bool saw_start = false;
  bool saw_finish = false;
  bool saw_ids_on_complete_event = false;
  for (const json::Value& event : events->array) {
    const json::Value* ph = event.Find("ph");
    const json::Value* id = event.Find("id");
    if (ph != nullptr && id != nullptr &&
        id->number == static_cast<double>(hop->span_id)) {
      if (ph->string_value == "s") {
        saw_start = true;
        EXPECT_EQ(event.Find("tid")->number,
                  static_cast<double>(root->thread_id));
      }
      if (ph->string_value == "f") {
        saw_finish = true;
        EXPECT_EQ(event.Find("bp")->string_value, "e");
        EXPECT_EQ(event.Find("tid")->number,
                  static_cast<double>(hop->thread_id));
      }
    }
    const json::Value* name = event.Find("name");
    if (name != nullptr && name->string_value == "flow_test/hop" &&
        ph != nullptr && ph->string_value == "X") {
      const json::Value* args = event.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->Find("span_id")->number,
                static_cast<double>(hop->span_id));
      EXPECT_EQ(args->Find("trace_id")->number,
                static_cast<double>(hop->trace_id));
      EXPECT_EQ(args->Find("parent_id")->number,
                static_cast<double>(hop->parent_id));
      saw_ids_on_complete_event = true;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_finish);
  EXPECT_TRUE(saw_ids_on_complete_event);
  buffer.Clear();
}

// ---------------------------------------------------------------------------
// JSON well-formedness. A minimal structural validator: balanced
// brackets/braces outside strings, no trailing garbage.

bool JsonIsBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return stack.empty() && !in_string;
}

TEST(TraceTest, ChromeTraceJsonShape) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  {
    AMS_TRACE_SPAN("trace_test/json_outer");
    AMS_TRACE_SPAN("trace_test/json_inner");
  }
  buffer.SetEnabled(false);

  std::ostringstream out;
  TraceExporter::WriteJson(out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  // Chrome trace-event format essentials: a traceEvents array of complete
  // ("X") events carrying ts/dur/pid/tid.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("trace_test/json_outer"), std::string::npos);
  EXPECT_NE(json.find("trace_test/json_inner"), std::string::npos);
  buffer.Clear();
}

TEST(ReportTest, JsonSnapshotRoundTripShape) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("report_test/counter").Add(11);
  registry.GetGauge("report_test/gauge").Set(0.5);
  registry.GetHistogram("report_test/hist", std::vector<double>{1.0, 2.0}).Observe(1.5);

  std::ostringstream out;
  WriteJsonReport(registry.Snapshot(), out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"report_test/counter\":11"), std::string::npos);
  EXPECT_NE(json.find("\"report_test/gauge\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"report_test/hist\":{\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"le\":2,\"count\":1"), std::string::npos);
}

TEST(ReportTest, TextReportContainsInstruments) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("text_report_test/counter").Add(5);
  std::ostringstream out;
  WriteTextReport(registry.Snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("telemetry report"), std::string::npos);
  EXPECT_NE(text.find("text_report_test/counter"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON parser (src/obs/json_parse): the validator behind bench_diff and the
// round-trip tests below.

TEST(JsonParseTest, ParsesScalarsAndContainers) {
  auto result = json::Parse(
      R"({"a":1.5,"b":[true,false,null],"c":{"nested":"x"},"d":-2e3})");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const json::Value& root = result.ValueOrDie();
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.Find("a"), nullptr);
  EXPECT_DOUBLE_EQ(root.Find("a")->number, 1.5);
  ASSERT_TRUE(root.Find("b")->is_array());
  EXPECT_EQ(root.Find("b")->array.size(), 3u);
  EXPECT_TRUE(root.Find("b")->array[0].bool_value);
  EXPECT_TRUE(root.Find("b")->array[2].is_null());
  EXPECT_EQ(root.Find("c")->Find("nested")->string_value, "x");
  EXPECT_DOUBLE_EQ(root.Find("d")->number, -2000.0);
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonParseTest, DecodesStringEscapes) {
  auto result = json::Parse(R"(["q\"b\\n\nuA\t"])");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().array[0].string_value, "q\"b\\n\nuA\t");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(json::Parse("[1,]").ok());
  EXPECT_FALSE(json::Parse("nul").ok());
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
}

// ---------------------------------------------------------------------------
// JSON hardening: non-finite gauges serialize as null, hostile instrument
// and span names round-trip through the escaper and back through the parser.

TEST(ReportTest, NonFiniteGaugesSerializeAsNull) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetGauge("nonfinite_test/nan")
      .Set(std::numeric_limits<double>::quiet_NaN());
  registry.GetGauge("nonfinite_test/inf")
      .Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("nonfinite_test/finite").Set(1.25);

  std::ostringstream out;
  WriteJsonReport(registry.Snapshot(), out);
  auto result = json::Parse(out.str());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const json::Value* gauges = result.ValueOrDie().Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("nonfinite_test/nan"), nullptr);
  EXPECT_TRUE(gauges->Find("nonfinite_test/nan")->is_null());
  EXPECT_TRUE(gauges->Find("nonfinite_test/inf")->is_null());
  ASSERT_TRUE(gauges->Find("nonfinite_test/finite")->is_number());
  EXPECT_DOUBLE_EQ(gauges->Find("nonfinite_test/finite")->number, 1.25);
}

TEST(ReportTest, HostileInstrumentNamesRoundTrip) {
  // Quotes, backslashes, newlines and a control byte — all legal label
  // values, all must survive serialize -> parse exactly.
  const std::string hostile = "evil\"name\\with\nnewline\x01!";
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter(hostile).Add(9);
  registry.GetCounter("hostile/labeled", {{"k", "va\"l\\ue"}}).Add(2);

  std::ostringstream out;
  WriteJsonReport(registry.Snapshot(), out);
  auto result = json::Parse(out.str());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const json::Value* counters = result.ValueOrDie().Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find(hostile), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find(hostile)->number, 9.0);
  const std::string labeled = "hostile/labeled{k=\"va\"l\\ue\"}";
  ASSERT_NE(counters->Find(labeled), nullptr);
  EXPECT_DOUBLE_EQ(counters->Find(labeled)->number, 2.0);
}

// ---------------------------------------------------------------------------
// Prometheus exposition (src/obs/prometheus): the admin plane's /metrics
// body. Same hostile corpus as the JSON tests above — names and label
// values full of quotes, backslashes, newlines, and control bytes must
// never break the one-series-per-line framing a scraper depends on.

TEST(PrometheusTest, NameSanitizationSqueezesToExpositionCharset) {
  EXPECT_EQ(PrometheusName("serve/latency_ms"), "serve_latency_ms");
  EXPECT_EQ(PrometheusName("evil\"name\\with\nnewline\x01!"),
            "evil_name_with_newline__");
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName("ok:colon"), "ok:colon");
  EXPECT_EQ(PrometheusName(""), "_");
}

TEST(PrometheusTest, LabelValueEscapesTheThreeSpecials) {
  EXPECT_EQ(PrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusLabelValue("va\"l\\ue"), "va\\\"l\\\\ue");
  EXPECT_EQ(PrometheusLabelValue("a\nb"), "a\\nb");
}

TEST(PrometheusTest, HostileNamesAndLabelValuesKeepLineFraming) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("prom_hostile/evil\"name\\with\nnewline\x01!").Add(9);
  registry.GetCounter("prom_hostile/labeled", {{"k", "va\"l\\ue"}}).Add(2);
  registry.GetCounter("prom_hostile/labeled", {{"k", "a\nb"}}).Add(3);

  std::ostringstream out;
  WritePrometheusReport(registry.Snapshot(), out);
  const std::string body = out.str();

  EXPECT_NE(body.find("prom_hostile_evil_name_with_newline__ 9"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("prom_hostile_labeled{k=\"va\\\"l\\\\ue\"} 2"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("prom_hostile_labeled{k=\"a\\nb\"} 3"),
            std::string::npos)
      << body;

  // Framing: no control byte survives into the exposition, and every line
  // is either a TYPE header or starts in the metric-name charset (a hostile
  // value that broke out of its quotes would start a line with garbage).
  EXPECT_EQ(body.find('\x01'), std::string::npos);
  std::istringstream lines(body);
  for (std::string line; std::getline(lines, line);) {
    if (line.empty()) continue;
    ASSERT_TRUE(line[0] == '#' || line[0] == '_' || line[0] == ':' ||
                std::isalpha(static_cast<unsigned char>(line[0])))
        << "line breaks framing: " << line;
    // Quotes are balanced once escapes are accounted for.
    int quotes = 0;
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '\\') {
        ++i;  // skip the escaped byte
      } else if (line[i] == '"') {
        ++quotes;
      }
    }
    ASSERT_EQ(quotes % 2, 0) << "unbalanced quotes: " << line;
  }
}

TEST(PrometheusTest, LabeledSeriesGroupUnderOneTypeHeader) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter("prom_group/family", {{"op", "read"}}).Add(1);
  registry.GetCounter("prom_group/family", {{"op", "write"}}).Add(4);

  std::ostringstream out;
  WritePrometheusReport(registry.Snapshot(), out);
  const std::string body = out.str();

  // Exactly one TYPE header for the family, both series under it.
  const std::string header = "# TYPE prom_group_family counter\n";
  const size_t first = body.find(header);
  ASSERT_NE(first, std::string::npos) << body;
  EXPECT_EQ(body.find(header, first + 1), std::string::npos);
  EXPECT_NE(body.find("prom_group_family{op=\"read\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("prom_group_family{op=\"write\"} 4"),
            std::string::npos);
}

TEST(PrometheusTest, HistogramRendersCumulativeBucketsSumAndCount) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Histogram& hist = registry.GetHistogram("prom_hist/latency",
                                          std::vector<double>{1.0, 2.0});
  hist.Observe(0.5);
  hist.Observe(1.5);
  hist.Observe(3.0);

  std::ostringstream out;
  WritePrometheusReport(registry.Snapshot(), out);
  const std::string body = out.str();

  EXPECT_NE(body.find("# TYPE prom_hist_latency histogram"),
            std::string::npos);
  // Cumulative, in bound order, always ending at +Inf.
  const size_t b1 = body.find("prom_hist_latency_bucket{le=\"1\"} 1");
  const size_t b2 = body.find("prom_hist_latency_bucket{le=\"2\"} 2");
  const size_t binf = body.find("prom_hist_latency_bucket{le=\"+Inf\"} 3");
  ASSERT_NE(b1, std::string::npos) << body;
  ASSERT_NE(b2, std::string::npos) << body;
  ASSERT_NE(binf, std::string::npos) << body;
  EXPECT_LT(b1, b2);
  EXPECT_LT(b2, binf);
  EXPECT_NE(body.find("prom_hist_latency_sum 5"), std::string::npos);
  EXPECT_NE(body.find("prom_hist_latency_count 3"), std::string::npos);
}

TEST(PrometheusTest, NonFiniteGaugesUseExpositionLiterals) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetGauge("prom_nonfinite/nan")
      .Set(std::numeric_limits<double>::quiet_NaN());
  registry.GetGauge("prom_nonfinite/pinf")
      .Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("prom_nonfinite/ninf")
      .Set(-std::numeric_limits<double>::infinity());

  std::ostringstream out;
  WritePrometheusReport(registry.Snapshot(), out);
  const std::string body = out.str();
  EXPECT_NE(body.find("prom_nonfinite_nan NaN"), std::string::npos) << body;
  EXPECT_NE(body.find("prom_nonfinite_pinf +Inf"), std::string::npos);
  EXPECT_NE(body.find("prom_nonfinite_ninf -Inf"), std::string::npos);
}

TEST(TraceTest, HostileSpanNamesRoundTripThroughChromeTrace) {
  TraceBuffer& buffer = TraceBuffer::Get();
  buffer.Clear();
  buffer.SetEnabled(true);
  {
    AMS_TRACE_SPAN("trace_test/evil\"quote\\back\nline");
  }
  buffer.SetEnabled(false);

  std::ostringstream out;
  TraceExporter::WriteJson(out);
  auto result = json::Parse(out.str());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const json::Value* events = result.ValueOrDie().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool found = false;
  for (const json::Value& event : events->array) {
    const json::Value* name = event.Find("name");
    if (name != nullptr &&
        name->string_value == "trace_test/evil\"quote\\back\nline") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  buffer.Clear();
}

// ---------------------------------------------------------------------------
// PeriodicReporter: JSONL delta snapshots, derived gauges, clean shutdown —
// exercised while other threads hammer labeled instruments (the interesting
// part under -DAMS_SANITIZE=thread).

TEST(PeriodicReporterTest, EmitsValidSelfContainedJsonlUnderConcurrency) {
  MetricsRegistry& registry = MetricsRegistry::Get();

  std::ostringstream stream;
  PeriodicReporter::Options options;
  options.interval_ms = 5;
  options.out = &stream;
  auto reporter = std::make_unique<PeriodicReporter>(options);

  std::atomic<bool> keep_running{true};
  std::vector<std::thread> workers;
  const char* kModels[] = {"AMS", "Ridge", "XGBoost"};
  for (const char* model : kModels) {
    workers.emplace_back([model, &keep_running] {
      MetricsRegistry& reg = MetricsRegistry::Get();
      Counter& fits =
          reg.GetCounter("periodic_test/model_fit", {{"model", model}});
      Histogram& lat = reg.GetHistogram("periodic_test/lat_ms");
      int i = 0;
      while (keep_running.load(std::memory_order_relaxed)) {
        fits.Increment();
        reg.GetGauge("periodic_test/loss", {{"model", model}})
            .Set(1.0 / (1 + i));
        lat.Observe(static_cast<double>(i % 16));
        ++i;
      }
    });
  }

  // Let the reporter tick a few times while the workers run; generous
  // deadline for slow or sanitized builds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (reporter->lines_emitted() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  keep_running.store(false);
  for (std::thread& worker : workers) worker.join();
  reporter->Stop();
  const int lines_emitted = reporter->lines_emitted();
  ASSERT_GE(lines_emitted, 3);

  // Every line parses; sequence numbers increase; the last line is final.
  // Full lines (first and final) carry the derived gauges and every live
  // series; interior lines are emit-on-change so a series may be absent —
  // but when present its shape must still be self-consistent.
  std::istringstream lines(stream.str());
  std::string line;
  int parsed_lines = 0;
  double last_seq = -1.0;
  bool saw_final = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto result = json::Parse(line);
    ASSERT_TRUE(result.ok())
        << result.status().ToString() << " in line: " << line;
    const json::Value& root = result.ValueOrDie();
    ++parsed_lines;
    ASSERT_NE(root.Find("schema"), nullptr);
    EXPECT_EQ(root.Find("schema")->string_value, "ams-telemetry-delta-v2");
    ASSERT_NE(root.Find("seq"), nullptr);
    EXPECT_GT(root.Find("seq")->number, last_seq);
    last_seq = root.Find("seq")->number;
    ASSERT_NE(root.Find("final"), nullptr);
    saw_final = root.Find("final")->bool_value;  // true only on the last
    ASSERT_NE(root.Find("full"), nullptr);
    const bool full = root.Find("full")->bool_value;
    EXPECT_EQ(full, saw_final || root.Find("seq")->number == 1.0);

    const json::Value* gauges = root.Find("gauges");
    ASSERT_NE(gauges, nullptr);
    const json::Value* counters = root.Find("counters");
    ASSERT_NE(counters, nullptr);
    const json::Value* histograms = root.Find("histograms");
    ASSERT_NE(histograms, nullptr);
    if (full) {
      EXPECT_NE(gauges->Find("par/pool_utilization"), nullptr);
      EXPECT_NE(gauges->Find("robust/fault_rate"), nullptr);
      ASSERT_NE(counters->Find("periodic_test/model_fit{model=\"AMS\"}"),
                nullptr);
      ASSERT_NE(histograms->Find("periodic_test/lat_ms"), nullptr);
    }
    const json::Value* labeled =
        counters->Find("periodic_test/model_fit{model=\"AMS\"}");
    if (labeled != nullptr) {
      ASSERT_NE(labeled->Find("total"), nullptr);
      ASSERT_NE(labeled->Find("delta"), nullptr);
      EXPECT_GE(labeled->Find("total")->number,
                labeled->Find("delta")->number);
    }
    const json::Value* lat = histograms->Find("periodic_test/lat_ms");
    if (lat != nullptr) {
      for (const char* field :
           {"count", "delta", "sum", "p50", "p95", "p99"}) {
        EXPECT_NE(lat->Find(field), nullptr) << field;
      }
    }
  }
  EXPECT_EQ(parsed_lines, lines_emitted);
  EXPECT_TRUE(saw_final);

  // The derived gauges were folded back into the registry for exit reports.
  const double utilization =
      registry.GetGauge("par/pool_utilization").value();
  EXPECT_GE(utilization, 0.0);
  EXPECT_LE(utilization, 1.0);

  // Stop is idempotent and emits nothing further.
  reporter->Stop();
  EXPECT_EQ(reporter->lines_emitted(), lines_emitted);
}

TEST(PeriodicReporterTest, OptionsFromEnvParsesIntervalAndFile) {
  ::setenv("AMS_TELEMETRY_INTERVAL_MS", "250", 1);
  ::setenv("AMS_TELEMETRY_FILE", "/tmp/t.jsonl", 1);
  PeriodicReporter::Options options = PeriodicReporter::OptionsFromEnv();
  EXPECT_EQ(options.interval_ms, 250);
  EXPECT_EQ(options.file_path, "/tmp/t.jsonl");
  ::setenv("AMS_TELEMETRY_INTERVAL_MS", "bogus", 1);
  EXPECT_LE(PeriodicReporter::OptionsFromEnv().interval_ms, 0);
  ::unsetenv("AMS_TELEMETRY_INTERVAL_MS");
  EXPECT_LE(PeriodicReporter::OptionsFromEnv().interval_ms, 0);
  ::unsetenv("AMS_TELEMETRY_FILE");
}

TEST(PeriodicReporterTest, WritesToFileAndShortRunStillGetsFinalLine) {
  const std::string path = ::testing::TempDir() + "periodic_test.jsonl";
  {
    PeriodicReporter::Options options;
    options.interval_ms = 60'000;  // never ticks on its own
    options.file_path = path;
    PeriodicReporter reporter(options);
    MetricsRegistry::Get().GetCounter("periodic_file_test/events").Add(4);
    reporter.Stop();
    EXPECT_EQ(reporter.lines_emitted(), 1);  // the final flush
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto result = json::Parse(line);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.ValueOrDie().Find("final")->bool_value);
  std::filesystem::remove(path);
}

TEST(PeriodicReporterTest, EmitOnChangeOmitsUnchangedSeries) {
  // A gauge set once before the reporter starts appears on the first (full)
  // line and the final (full) line, but on no interior line: it never
  // changes after its first emission.
  MetricsRegistry::Get().GetGauge("eoc_test/static").Set(42.0);

  std::ostringstream stream;
  PeriodicReporter::Options options;
  options.interval_ms = 5;
  options.out = &stream;
  PeriodicReporter reporter(options);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (reporter.lines_emitted() < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  reporter.Stop();
  ASSERT_GE(reporter.lines_emitted(), 4);

  std::istringstream lines(stream.str());
  std::string line;
  int static_appearances = 0;
  int full_lines = 0;
  int interior_lines_with_static = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto result = json::Parse(line);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const json::Value& root = result.ValueOrDie();
    const bool full = root.Find("full")->bool_value;
    const json::Value* gauges = root.Find("gauges");
    ASSERT_NE(gauges, nullptr);
    const bool has_static = gauges->Find("eoc_test/static") != nullptr;
    if (full) {
      ++full_lines;
      EXPECT_TRUE(has_static);
    } else if (has_static) {
      ++interior_lines_with_static;
    }
    if (has_static) ++static_appearances;
  }
  EXPECT_EQ(full_lines, 2);  // first and final
  EXPECT_EQ(interior_lines_with_static, 0);
  EXPECT_EQ(static_appearances, 2);
}

TEST(PeriodicReporterTest, LabeledCardinalityCapDropsAndCounts) {
  // Far more labeled series than the cap admits: each line carries at most
  // `max_labeled_series` labeled names and the overflow lands in the
  // obs/dropped_series counter (itself unlabeled, so never capped).
  MetricsRegistry& registry = MetricsRegistry::Get();
  for (int i = 0; i < 32; ++i) {
    registry
        .GetCounter("cap_test/events", {{"shard", std::to_string(i)}})
        .Add(static_cast<uint64_t>(i + 1));
  }
  const uint64_t dropped_before =
      registry.GetCounter("obs/dropped_series").value();

  std::ostringstream stream;
  PeriodicReporter::Options options;
  options.interval_ms = 60'000;  // never ticks on its own
  options.out = &stream;
  options.max_labeled_series = 4;
  PeriodicReporter reporter(options);
  reporter.Stop();  // emits the one final (full) line

  auto result = json::Parse(stream.str().substr(0, stream.str().find('\n')));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const json::Value& root = result.ValueOrDie();
  int labeled_emitted = 0;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const json::Value* object = root.Find(section);
    ASSERT_NE(object, nullptr);
    for (const auto& [name, value] : object->object) {
      if (name.find('{') != std::string::npos) ++labeled_emitted;
    }
  }
  EXPECT_LE(labeled_emitted, 4);
  EXPECT_GT(registry.GetCounter("obs/dropped_series").value(),
            dropped_before);
}

// ---------------------------------------------------------------------------
// Sampling wall-clock profiler.

TEST(ProfilerTest, CapturesKnownStackInFoldedOutput) {
  WallProfiler::Options options;
  options.hz = 2000.0;  // fast so the test finishes quickly
  std::ostringstream folded;
  options.out = &folded;
  WallProfiler profiler(options);
  {
    AMS_TRACE_SPAN("prof_test/outer");
    AMS_TRACE_SPAN("prof_test/inner");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (profiler.samples() < 20 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  profiler.Stop();
  ASSERT_GE(profiler.samples(), 20u);

  // The two-frame stack dominates this thread's samples.
  bool found_stack = false;
  for (const auto& [stack, count] : profiler.FoldedCounts()) {
    if (stack == "prof_test/outer;prof_test/inner") {
      found_stack = count > 0;
    }
  }
  EXPECT_TRUE(found_stack);

  // Folded lines are flamegraph-consumable: "frame[;frame...] count".
  std::istringstream lines(folded.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++parsed;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string count_text = line.substr(space + 1);
    char* end = nullptr;
    const unsigned long long count =
        std::strtoull(count_text.c_str(), &end, 10);
    EXPECT_NE(end, count_text.c_str()) << line;
    EXPECT_EQ(*end, '\0') << line;
    EXPECT_GT(count, 0ull) << line;
  }
  EXPECT_GE(parsed, 1);

  // Stop is idempotent; the sample counter froze.
  const uint64_t samples = profiler.samples();
  profiler.Stop();
  EXPECT_EQ(profiler.samples(), samples);
}

TEST(ProfilerTest, SanitizesHostileFrameNames) {
  WallProfiler::Options options;
  options.hz = 2000.0;
  WallProfiler profiler(options);
  {
    AMS_TRACE_SPAN("prof;evil test\tname");
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (profiler.samples() < 10 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  profiler.Stop();
  bool found = false;
  for (const auto& [stack, count] : profiler.FoldedCounts()) {
    EXPECT_EQ(stack.find(' '), std::string::npos) << stack;
    EXPECT_EQ(stack.find('\t'), std::string::npos) << stack;
    if (stack == "prof_evil_test_name") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ProfilerTest, OptionsFromEnvParsesFileAndHz) {
  ::setenv("AMS_PROFILE_FILE", "/tmp/p.folded", 1);
  ::setenv("AMS_PROFILE_HZ", "250", 1);
  WallProfiler::Options options = WallProfiler::OptionsFromEnv();
  EXPECT_EQ(options.file_path, "/tmp/p.folded");
  EXPECT_EQ(options.hz, 250.0);
  ::unsetenv("AMS_PROFILE_HZ");
  EXPECT_EQ(WallProfiler::OptionsFromEnv().hz, 97.0);  // prime default
  ::unsetenv("AMS_PROFILE_FILE");
  EXPECT_TRUE(WallProfiler::OptionsFromEnv().file_path.empty());
}

// ---------------------------------------------------------------------------
// SLO health monitor.

TEST(HealthTest, ParseSpecAcceptsGrammar) {
  auto result = HealthMonitor::ParseSpec(
      "serve/latency_ms:p99<50;robust/fault_rate:<0.01;"
      "serve/requests:count>=100;train/loss<=0.5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<SloTarget>& targets = result.ValueOrDie();
  ASSERT_EQ(targets.size(), 4u);
  EXPECT_EQ(targets[0].metric, "serve/latency_ms");
  EXPECT_EQ(targets[0].aggregate, "p99");
  EXPECT_TRUE(targets[0].less_than);
  EXPECT_FALSE(targets[0].or_equal);
  EXPECT_DOUBLE_EQ(targets[0].threshold, 50.0);
  EXPECT_EQ(targets[1].aggregate, "value");  // trailing bare ':'
  EXPECT_DOUBLE_EQ(targets[1].threshold, 0.01);
  EXPECT_EQ(targets[2].aggregate, "count");
  EXPECT_FALSE(targets[2].less_than);
  EXPECT_TRUE(targets[2].or_equal);
  EXPECT_EQ(targets[3].metric, "train/loss");
  EXPECT_EQ(targets[3].aggregate, "value");  // no ':' at all
  EXPECT_TRUE(targets[3].or_equal);
  // Empty spec: no targets, no error. Empty items are skipped.
  EXPECT_TRUE(HealthMonitor::ParseSpec("").ValueOrDie().empty());
  EXPECT_EQ(HealthMonitor::ParseSpec(";;a<1;").ValueOrDie().size(), 1u);
}

TEST(HealthTest, ParseSpecRejectsMalformed) {
  for (const char* spec :
       {"nonsense", "m:p42<5", "m<", "<5", "m<abc", "m<1junk", ":p99<5",
        "good<1;bad"}) {
    EXPECT_FALSE(HealthMonitor::ParseSpec(spec).ok()) << spec;
  }
}

TEST(HealthTest, EvaluateHysteresisAndRecovery) {
  auto targets = HealthMonitor::ParseSpec("health_test/g:<5");
  ASSERT_TRUE(targets.ok());
  HealthMonitor monitor(targets.MoveValue(), /*fail_after=*/3);

  MetricsSnapshot snapshot;
  snapshot.gauges.push_back({"health_test/g", 1.0});
  EXPECT_EQ(monitor.Evaluate(snapshot), HealthState::kOk);

  snapshot.gauges[0].value = 10.0;  // violated
  EXPECT_EQ(monitor.Evaluate(snapshot), HealthState::kDegraded);
  EXPECT_EQ(monitor.last_results()[0].streak, 1);
  EXPECT_EQ(monitor.Evaluate(snapshot), HealthState::kDegraded);
  EXPECT_EQ(monitor.Evaluate(snapshot), HealthState::kFailing);
  EXPECT_EQ(monitor.last_results()[0].streak, 3);
  EXPECT_EQ(monitor.state(), HealthState::kFailing);

  snapshot.gauges[0].value = 1.0;  // recovery resets the streak
  EXPECT_EQ(monitor.Evaluate(snapshot), HealthState::kOk);
  EXPECT_EQ(monitor.last_results()[0].streak, 0);

  // The evaluation published the health gauges.
  EXPECT_EQ(MetricsRegistry::Get().GetGauge("obs/health_state").value(), 0.0);
  EXPECT_EQ(MetricsRegistry::Get()
                .GetGauge("obs/slo_violation", {{"slo", "health_test/g:<5"}})
                .value(),
            0.0);
}

TEST(HealthTest, MissingMetricIsNeverViolated) {
  auto targets =
      HealthMonitor::ParseSpec("health_test/not_registered_anywhere<1");
  ASSERT_TRUE(targets.ok());
  HealthMonitor monitor(targets.MoveValue());
  EXPECT_EQ(monitor.Evaluate(MetricsSnapshot{}), HealthState::kOk);
  ASSERT_EQ(monitor.last_results().size(), 1u);
  EXPECT_TRUE(monitor.last_results()[0].missing);
  EXPECT_FALSE(monitor.last_results()[0].violated);
}

TEST(HealthTest, HistogramAggregatesAndValueFallback) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  Histogram& lat = registry.GetHistogram("health_hist_test/lat");
  lat.Reset();
  for (int i = 0; i < 100; ++i) lat.Observe(static_cast<double>(i));
  registry.GetCounter("health_hist_test/reqs").Add(7);

  auto targets = HealthMonitor::ParseSpec(
      "health_hist_test/lat:p99<10;health_hist_test/lat:count>=100;"
      "health_hist_test/reqs>5");
  ASSERT_TRUE(targets.ok());
  HealthMonitor monitor(targets.MoveValue());
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(monitor.Evaluate(snapshot), HealthState::kDegraded);
  const std::vector<SloResult> results = monitor.last_results();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].violated);   // p99 of 0..99 is way above 10
  EXPECT_GT(results[0].observed, 10.0);
  EXPECT_FALSE(results[1].violated);  // count == 100 >= 100
  EXPECT_FALSE(results[2].violated);  // counter total 7 > 5
  EXPECT_DOUBLE_EQ(results[2].observed, 7.0);
}

TEST(HealthTest, ConfigureGlobalSwapsAndClears) {
  ASSERT_TRUE(HealthMonitor::ConfigureGlobal("health_global_test/g<1").ok());
  ASSERT_NE(HealthMonitor::Global(), nullptr);
  EXPECT_EQ(HealthMonitor::Global()->targets().size(), 1u);
  // A malformed spec is refused and leaves the previous monitor in place.
  EXPECT_FALSE(HealthMonitor::ConfigureGlobal("broken").ok());
  ASSERT_NE(HealthMonitor::Global(), nullptr);
  EXPECT_EQ(HealthMonitor::Global()->targets()[0].metric,
            "health_global_test/g");
  ASSERT_TRUE(HealthMonitor::ConfigureGlobal("").ok());
  EXPECT_EQ(HealthMonitor::Global(), nullptr);
}

// ---------------------------------------------------------------------------
// Run ledger.

TEST(LedgerTest, ManifestShapeAndFingerprint) {
  MetricsRegistry::Get().GetCounter("ledger_test/events").Add(2);
  std::ostringstream out;
  WriteRunLedgerJson("unit_test", 4242, 123.5,
                     MetricsRegistry::Get().Snapshot(), out);
  auto result = json::Parse(out.str());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const json::Value& root = result.ValueOrDie();
  EXPECT_EQ(root.Find("schema")->string_value, "ams-run-ledger-v1");
  EXPECT_DOUBLE_EQ(root.Find("schema_version")->number,
                   kRunLedgerSchemaVersion);
  EXPECT_EQ(root.Find("binary")->string_value, "unit_test");
  EXPECT_DOUBLE_EQ(root.Find("pid")->number, 4242.0);
  EXPECT_DOUBLE_EQ(root.Find("wall_time_ms")->number, 123.5);

  // Fingerprint: 16 hex chars, deterministic, environment-sensitive.
  const std::string fingerprint =
      root.Find("config_fingerprint")->string_value;
  EXPECT_EQ(fingerprint.size(), 16u);
  EXPECT_EQ(fingerprint.find_first_not_of("0123456789abcdef"),
            std::string::npos);
  EXPECT_EQ(ConfigFingerprint("unit_test"), fingerprint);
  EXPECT_NE(ConfigFingerprint("other_binary"), fingerprint);
  ::setenv("AMS_THREADS", "7", 1);
  EXPECT_NE(ConfigFingerprint("unit_test"), fingerprint);
  ::unsetenv("AMS_THREADS");
  EXPECT_EQ(ConfigFingerprint("unit_test"), fingerprint);

  // Every behaviour-relevant env key appears (null when unset), and the
  // metrics block embeds the full report.
  const json::Value* env = root.Find("env");
  ASSERT_NE(env, nullptr);
  for (const std::string& key : RunLedgerEnvKeys()) {
    EXPECT_NE(env->Find(key), nullptr) << key;
  }
  const json::Value* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->Find("counters"), nullptr);
  EXPECT_NE(metrics->Find("counters")->Find("ledger_test/events"), nullptr);

  // With no global monitor, the health block is null (AMS_SLO unset).
  ASSERT_NE(root.Find("health"), nullptr);
  EXPECT_TRUE(root.Find("health")->is_null());
}

TEST(LedgerTest, HealthBlockReflectsGlobalMonitor) {
  MetricsRegistry::Get().GetGauge("ledger_health_test/g").Set(10.0);
  ASSERT_TRUE(
      HealthMonitor::ConfigureGlobal("ledger_health_test/g<5").ok());

  std::ostringstream out;
  WriteRunLedgerJson("unit_test", 4242, 1.0,
                     MetricsRegistry::Get().Snapshot(), out);
  HealthMonitor::ConfigureGlobal("");  // clear before any assertion can bail

  auto result = json::Parse(out.str());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const json::Value* health = result.ValueOrDie().Find("health");
  ASSERT_NE(health, nullptr);
  ASSERT_TRUE(health->is_object());
  EXPECT_EQ(health->Find("state")->string_value, "degraded");
  const json::Value* targets = health->Find("targets");
  ASSERT_NE(targets, nullptr);
  ASSERT_EQ(targets->array.size(), 1u);
  const json::Value& target = targets->array[0];
  EXPECT_EQ(target.Find("slo")->string_value, "ledger_health_test/g<5");
  EXPECT_DOUBLE_EQ(target.Find("observed")->number, 10.0);
  EXPECT_TRUE(target.Find("violated")->bool_value);
  EXPECT_FALSE(target.Find("missing")->bool_value);
}

TEST(LedgerTest, ComponentsFoldIntoFingerprintAndManifest) {
  ClearLedgerComponents();
  const std::string base = ConfigFingerprint("unit_test");

  // Registering a component changes the fingerprint (same env, different
  // served model => different configuration identity).
  SetLedgerComponent("serve_model_fingerprint", "abc123");
  const std::string with_component = ConfigFingerprint("unit_test");
  EXPECT_NE(with_component, base);

  // Last write per key wins; a second key changes the hash again.
  SetLedgerComponent("serve_model_fingerprint", "def456");
  EXPECT_NE(ConfigFingerprint("unit_test"), with_component);
  SetLedgerComponent("dataset", "synthetic-v1");
  auto components = LedgerComponents();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].first, "dataset");  // sorted by key
  EXPECT_EQ(components[1].first, "serve_model_fingerprint");
  EXPECT_EQ(components[1].second, "def456");

  // The manifest carries the components object, and its fingerprint is the
  // component-aware one.
  std::ostringstream out;
  WriteRunLedgerJson("unit_test", 1, 1.0, MetricsRegistry::Get().Snapshot(),
                     out);
  auto result = json::Parse(out.str());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const json::Value& root = result.ValueOrDie();
  const json::Value* manifest_components = root.Find("components");
  ASSERT_NE(manifest_components, nullptr);
  ASSERT_NE(manifest_components->Find("serve_model_fingerprint"), nullptr);
  EXPECT_EQ(manifest_components->Find("serve_model_fingerprint")->string_value,
            "def456");
  EXPECT_EQ(root.Find("config_fingerprint")->string_value,
            ConfigFingerprint("unit_test"));

  // Clearing restores the component-free fingerprint.
  ClearLedgerComponents();
  EXPECT_EQ(ConfigFingerprint("unit_test"), base);
}

TEST(LedgerTest, WriteRunLedgerCreatesParseableFile) {
  const std::string dir = ::testing::TempDir() + "ams_ledger_test";
  std::filesystem::remove_all(dir);
  Status status = WriteRunLedger(dir, "ledger_unit", 10.0,
                                 MetricsRegistry::Get().Snapshot());
  ASSERT_TRUE(status.ok()) << status.ToString();
  const std::string path =
      dir + "/run_ledger_unit_" + std::to_string(::getpid()) + ".json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto result = json::Parse(buffer.str());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().Find("binary")->string_value, "ledger_unit");
  // No leftover temp file from the atomic write.
  int entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// AMS_TELEMETRY env handling and off-mode silence.

TEST(ReportTest, TelemetryModeFromEnv) {
  ::setenv("AMS_TELEMETRY", "text", 1);
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kText);
  ::setenv("AMS_TELEMETRY", "json", 1);
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kJson);
  ::setenv("AMS_TELEMETRY", "off", 1);
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kOff);
  ::setenv("AMS_TELEMETRY", "bogus", 1);
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kOff);
  ::unsetenv("AMS_TELEMETRY");
  EXPECT_EQ(TelemetryModeFromEnv(), TelemetryMode::kOff);
}

TEST(ReportTest, OffModeEmitsNothing) {
  // Even with registered, non-zero instruments, kOff must write zero bytes.
  MetricsRegistry::Get().GetCounter("off_test/counter").Add(1);
  std::ostringstream out;
  FlushReport(TelemetryMode::kOff, out);
  EXPECT_TRUE(out.str().empty());
}

// ---------------------------------------------------------------------------
// Logging satellites.

TEST(LoggingTest, SinkCapturesOutput) {
  std::ostringstream capture;
  SetLogSink(&capture);
  AMS_LOG(Warning) << "captured " << 42;
  SetLogSink(nullptr);
  const std::string line = capture.str();
  EXPECT_NE(line.find("[WARN"), std::string::npos);
  EXPECT_NE(line.find("captured 42"), std::string::npos);
  EXPECT_NE(line.find("obs_test.cc"), std::string::npos);
}

TEST(LoggingTest, TimestampPrefixIsOptional) {
  std::ostringstream capture;
  SetLogSink(&capture);
  AMS_LOG(Warning) << "plain";
  const std::string plain = capture.str();
  EXPECT_EQ(plain.find("[WARN"), 0u);  // no prefix before the level tag

  capture.str("");
  SetLogTimestamps(true);
  AMS_LOG(Warning) << "stamped";
  SetLogTimestamps(false);
  SetLogSink(nullptr);
  const std::string stamped = capture.str();
  // "HH:MM:SS.mmm tN [WARN ...": the level tag no longer leads the line.
  EXPECT_GT(stamped.find("[WARN"), 0u);
  EXPECT_EQ(stamped[2], ':');
  EXPECT_EQ(stamped[5], ':');
  EXPECT_EQ(stamped[8], '.');
  EXPECT_NE(stamped.find(" t"), std::string::npos);
}

TEST(LoggingTest, DisabledLevelSkipsArgumentEvaluation) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarning);
  std::ostringstream capture;
  SetLogSink(&capture);
  int evaluations = 0;
  auto side_effect = [&evaluations] {
    ++evaluations;
    return "evaluated";
  };
  AMS_LOG(Debug) << side_effect();  // below threshold: must not evaluate
  AMS_LOG(Info) << side_effect();   // below threshold: must not evaluate
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(capture.str().empty());

  AMS_LOG(Error) << side_effect();  // enabled: evaluates and logs
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(capture.str().find("evaluated"), std::string::npos);
  SetLogSink(nullptr);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace ams::obs
