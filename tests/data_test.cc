// Tests for the data layer: panel structure, synthetic generator
// calibration, feature assembly, standardization and the time-series CV
// splitter.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/cv.h"
#include "data/features.h"
#include "data/generator.h"
#include "la/stats.h"

namespace ams::data {
namespace {

// --- Quarter ----------------------------------------------------------------

TEST(QuarterTest, Arithmetic) {
  Quarter q{2014, 3};
  EXPECT_EQ(q.Plus(1).ToString(), "2014q4");
  EXPECT_EQ(q.Plus(2).ToString(), "2015q1");
  EXPECT_EQ(q.Plus(15).ToString(), "2018q2");
  EXPECT_EQ(q.Plus(-3).ToString(), "2013q4");
  EXPECT_EQ(q.Plus(6).Minus(q), 6);
  EXPECT_EQ(q.EndMonth(), 9);
  EXPECT_EQ(Quarter({2016, 1}).EndMonth(), 3);
}

// --- Generator --------------------------------------------------------------

TEST(GeneratorTest, TransactionProfileMatchesPaperShape) {
  auto panel = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 42));
  ASSERT_TRUE(panel.ok());
  const Panel& p = panel.ValueOrDie();
  EXPECT_EQ(p.num_companies(), 71);
  EXPECT_EQ(p.num_quarters, 16);
  EXPECT_EQ(p.num_alt_channels, 1);
  EXPECT_EQ(p.QuarterAt(0).ToString(), "2014q3");
  EXPECT_EQ(p.QuarterAt(15).ToString(), "2018q2");
  EXPECT_TRUE(p.Validate().ok());
}

TEST(GeneratorTest, MapQueryProfileMatchesPaperShape) {
  auto panel =
      GenerateMarket(GeneratorConfig::Defaults(DatasetProfile::kMapQuery, 42));
  ASSERT_TRUE(panel.ok());
  const Panel& p = panel.ValueOrDie();
  EXPECT_EQ(p.num_companies(), 62);
  EXPECT_EQ(p.num_quarters, 9);
  EXPECT_EQ(p.num_alt_channels, 2);
  EXPECT_EQ(p.QuarterAt(0).ToString(), "2016q2");
  EXPECT_EQ(p.QuarterAt(8).ToString(), "2018q2");
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto a = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 7));
  auto b = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 7));
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < a.ValueOrDie().num_companies(); ++i) {
    for (int t = 0; t < a.ValueOrDie().num_quarters; ++t) {
      EXPECT_DOUBLE_EQ(a.ValueOrDie().companies[i].quarters[t].revenue,
                       b.ValueOrDie().companies[i].quarters[t].revenue);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 1));
  auto b = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 2));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.ValueOrDie().companies[0].quarters[0].revenue,
            b.ValueOrDie().companies[0].quarters[0].revenue);
}

TEST(GeneratorTest, EstimateOrderingHolds) {
  auto panel = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 11));
  ASSERT_TRUE(panel.ok());
  for (const Company& company : panel.ValueOrDie().companies) {
    for (const CompanyQuarter& cq : company.quarters) {
      EXPECT_LE(cq.low_estimate, cq.consensus);
      EXPECT_LE(cq.consensus, cq.high_estimate);
    }
  }
}

TEST(GeneratorTest, ConsensusIsUnbiasedOverall) {
  // Across the panel, the mean relative surprise should be near zero: the
  // analysts are collectively calibrated even though individual companies
  // carry persistent bias.
  auto panel = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 13));
  ASSERT_TRUE(panel.ok());
  double sum = 0.0;
  int count = 0;
  for (const Company& company : panel.ValueOrDie().companies) {
    for (const CompanyQuarter& cq : company.quarters) {
      sum += cq.UnexpectedRevenue() / cq.revenue;
      ++count;
    }
  }
  EXPECT_NEAR(sum / count, 0.0, 0.02);
}

TEST(GeneratorTest, AltSignalCorrelatesWithRevenueShocks) {
  // Year-over-year log changes of the alt signal must correlate positively
  // with YoY log revenue changes (the alt channel tracks demand).
  auto panel = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 17));
  ASSERT_TRUE(panel.ok());
  std::vector<double> alt_changes, rev_changes;
  for (const Company& company : panel.ValueOrDie().companies) {
    for (size_t t = 4; t < company.quarters.size(); ++t) {
      alt_changes.push_back(std::log(company.quarters[t].alt[0] /
                                     company.quarters[t - 4].alt[0]));
      rev_changes.push_back(std::log(company.quarters[t].revenue /
                                     company.quarters[t - 4].revenue));
    }
  }
  EXPECT_GT(la::PearsonCorrelation(alt_changes, rev_changes), 0.5);
}

TEST(GeneratorTest, SameSectorRevenueMoreCorrelated) {
  auto panel = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 19));
  ASSERT_TRUE(panel.ok());
  const Panel& p = panel.ValueOrDie();
  auto log_changes = [&](int i) {
    std::vector<double> out;
    for (int t = 1; t < p.num_quarters; ++t) {
      out.push_back(std::log(p.companies[i].quarters[t].revenue /
                             p.companies[i].quarters[t - 1].revenue));
    }
    return out;
  };
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (int i = 0; i < p.num_companies(); ++i) {
    for (int j = i + 1; j < p.num_companies(); ++j) {
      const double corr = la::PearsonCorrelation(log_changes(i),
                                                 log_changes(j));
      if (p.companies[i].sector == p.companies[j].sector) {
        same += corr;
        ++same_n;
      } else {
        cross += corr;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.1);
}

TEST(GeneratorTest, MarketCapsSpanAllBuckets) {
  auto panel = GenerateMarket(
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 23));
  ASSERT_TRUE(panel.ok());
  int small = 0, mid = 0, large = 0;
  for (const Company& company : panel.ValueOrDie().companies) {
    if (company.market_cap < 1.0) {
      ++small;
    } else if (company.market_cap < 10.0) {
      ++mid;
    } else {
      ++large;
    }
  }
  EXPECT_GT(small, 0);
  EXPECT_GT(mid, 0);
  EXPECT_GT(large, 0);
}

TEST(GeneratorTest, RejectsInvalidConfig) {
  GeneratorConfig config =
      GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 1);
  config.num_companies = 1;
  EXPECT_FALSE(GenerateMarket(config).ok());
  config = GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 1);
  config.alt_noise.clear();
  EXPECT_FALSE(GenerateMarket(config).ok());
  config = GeneratorConfig::Defaults(DatasetProfile::kTransactionAmount, 1);
  config.shock_persistence = 1.0;
  EXPECT_FALSE(GenerateMarket(config).ok());
}

// --- Features ---------------------------------------------------------------

class FeatureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    panel_ = GenerateMarket(GeneratorConfig::Defaults(
                                DatasetProfile::kTransactionAmount, 42))
                 .MoveValue();
  }
  Panel panel_;
};

TEST_F(FeatureTest, WidthMatchesLayout) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  // 4 lags x (4 + 1 alt) + 3 VE_t + 1 A_t + 4 quarter + 12 month + 8 sector.
  EXPECT_EQ(builder.num_features(), 4 * 5 + 3 + 1 + 4 + 12 + 8);
  FeatureOptions no_alt;
  no_alt.include_alt = false;
  FeatureBuilder builder_na(&panel_, no_alt);
  EXPECT_EQ(builder_na.num_features(), 4 * 4 + 3 + 0 + 4 + 12 + 8);
}

TEST_F(FeatureTest, BuildProducesOneRowPerCompanyPerQuarter) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  auto dataset = builder.Build({5, 6});
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.ValueOrDie().num_samples(), 2 * 71);
  // Rows ordered: quarter-major, company-minor.
  EXPECT_EQ(dataset.ValueOrDie().meta[0].quarter, 5);
  EXPECT_EQ(dataset.ValueOrDie().meta[0].company, 0);
  EXPECT_EQ(dataset.ValueOrDie().meta[71].quarter, 6);
  EXPECT_EQ(dataset.ValueOrDie().meta[72].company, 1);
}

TEST_F(FeatureTest, NormalizationByOldestQuarter) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  auto dataset = builder.Build({6}).MoveValue();
  // Column 0 is revenue_dq4 = R_{t-4} / R_{t-4} = 1 for every sample.
  EXPECT_EQ(dataset.feature_names[0], "revenue_dq4");
  for (int r = 0; r < dataset.num_samples(); ++r) {
    EXPECT_DOUBLE_EQ(dataset.x(r, 0), 1.0);
  }
  // Target is UR / R_{t-4}.
  const SampleMeta& meta = dataset.meta[3];
  EXPECT_NEAR(dataset.y[3], meta.actual_ur / meta.scale, 1e-12);
  EXPECT_NEAR(meta.actual_ur, meta.actual_revenue - meta.consensus, 1e-9);
}

TEST_F(FeatureTest, OneHotsAreExclusive) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  auto dataset = builder.Build({7}).MoveValue();
  const int onehot_begin = 4 * 5 + 3 + 1;
  for (int r = 0; r < dataset.num_samples(); ++r) {
    double quarter_sum = 0.0, month_sum = 0.0, sector_sum = 0.0;
    for (int c = 0; c < 4; ++c) quarter_sum += dataset.x(r, onehot_begin + c);
    for (int c = 0; c < 12; ++c) {
      month_sum += dataset.x(r, onehot_begin + 4 + c);
    }
    for (int c = 0; c < 8; ++c) {
      sector_sum += dataset.x(r, onehot_begin + 16 + c);
    }
    EXPECT_DOUBLE_EQ(quarter_sum, 1.0);
    EXPECT_DOUBLE_EQ(month_sum, 1.0);
    EXPECT_DOUBLE_EQ(sector_sum, 1.0);
  }
}

TEST_F(FeatureTest, RejectsQuartersWithoutFullHistory) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  EXPECT_FALSE(builder.Build({3}).ok());   // needs k = 4 lags
  EXPECT_FALSE(builder.Build({16}).ok());  // out of range
  EXPECT_TRUE(builder.Build({4}).ok());
}

TEST_F(FeatureTest, SequenceViewSplitsLagBlocks) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  auto dataset = builder.Build({8}).MoveValue();
  std::vector<la::Matrix> steps;
  la::Matrix statics;
  dataset.SequenceView(&steps, &statics);
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[0].cols(), dataset.lag_block_width);
  EXPECT_EQ(statics.cols(),
            dataset.num_features() - 4 * dataset.lag_block_width);
  // Step 0 column 0 equals feature column 0.
  EXPECT_DOUBLE_EQ(steps[0](5, 0), dataset.x(5, 0));
}

TEST_F(FeatureTest, StandardizerZeroMeanUnitVarOnTrain) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  auto train = builder.Build({4, 5, 6, 7}).MoveValue();
  Standardizer standardizer = Standardizer::Fit(train);
  standardizer.Apply(&train);
  // Pick a continuous column; after standardization mean ~0, var ~1.
  const int col = 1;  // consensus_dq4
  double mean = 0.0;
  for (int r = 0; r < train.num_samples(); ++r) mean += train.x(r, col);
  mean /= train.num_samples();
  EXPECT_NEAR(mean, 0.0, 1e-9);
  double var = 0.0;
  for (int r = 0; r < train.num_samples(); ++r) {
    var += std::pow(train.x(r, col) - mean, 2);
  }
  EXPECT_NEAR(var / train.num_samples(), 1.0, 1e-9);
}

TEST_F(FeatureTest, StandardizerLeavesOneHotsAlone) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  auto train = builder.Build({4, 5}).MoveValue();
  Standardizer standardizer = Standardizer::Fit(train);
  standardizer.Apply(&train);
  for (int c = 0; c < train.num_features(); ++c) {
    if (!train.is_onehot[c]) continue;
    for (int r = 0; r < train.num_samples(); ++r) {
      EXPECT_TRUE(train.x(r, c) == 0.0 || train.x(r, c) == 1.0);
    }
  }
}

TEST_F(FeatureTest, RowsByQuarterGroupsCorrectly) {
  FeatureBuilder builder(&panel_, FeatureOptions{});
  auto dataset = builder.Build({9, 10}).MoveValue();
  auto groups = dataset.RowsByQuarter();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, 9);
  EXPECT_EQ(groups[0].second.size(), 71u);
  for (size_t i = 0; i < groups[1].second.size(); ++i) {
    EXPECT_EQ(dataset.meta[groups[1].second[i]].company,
              static_cast<int>(i));
  }
}

// --- CV splitter -------------------------------------------------------------

TEST(CvTest, TransactionScheduleMatchesPaper) {
  auto folds = TimeSeriesCvFolds(
      16, DefaultCvOptions(DatasetProfile::kTransactionAmount));
  ASSERT_TRUE(folds.ok());
  const auto& f = folds.ValueOrDie();
  // Test quarters 2016q4..2018q2 -> panel indices 9..15 (7 folds).
  ASSERT_EQ(f.size(), 7u);
  EXPECT_EQ(f.front().test_quarter, 9);
  EXPECT_EQ(f.front().valid_quarter, 8);
  EXPECT_EQ(f.front().train_quarters.front(), 4);
  EXPECT_EQ(f.front().train_quarters.back(), 7);
  EXPECT_EQ(f.back().test_quarter, 15);
  EXPECT_EQ(f.back().train_quarters.back(), 13);
}

TEST(CvTest, MapQueryScheduleMatchesPaper) {
  auto folds =
      TimeSeriesCvFolds(9, DefaultCvOptions(DatasetProfile::kMapQuery));
  ASSERT_TRUE(folds.ok());
  const auto& f = folds.ValueOrDie();
  // Test quarters 2018q1, 2018q2 -> indices 7, 8.
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].test_quarter, 7);
  EXPECT_EQ(f[0].valid_quarter, 6);
  EXPECT_EQ(f[0].train_quarters, (std::vector<int>{4, 5}));
  EXPECT_EQ(f[1].test_quarter, 8);
  EXPECT_EQ(f[1].train_quarters, (std::vector<int>{4, 5, 6}));
}

TEST(CvTest, NoLeakageTrainBeforeValidBeforeTest) {
  auto folds = TimeSeriesCvFolds(
      16, DefaultCvOptions(DatasetProfile::kTransactionAmount));
  ASSERT_TRUE(folds.ok());
  for (const CvFold& fold : folds.ValueOrDie()) {
    for (int t : fold.train_quarters) EXPECT_LT(t, fold.valid_quarter);
    EXPECT_LT(fold.valid_quarter, fold.test_quarter);
  }
}

TEST(CvTest, ExpandingWindow) {
  auto folds = TimeSeriesCvFolds(
      16, DefaultCvOptions(DatasetProfile::kTransactionAmount));
  ASSERT_TRUE(folds.ok());
  const auto& f = folds.ValueOrDie();
  for (size_t i = 1; i < f.size(); ++i) {
    EXPECT_EQ(f[i].train_quarters.size(), f[i - 1].train_quarters.size() + 1);
  }
}

TEST(CvTest, RejectsTooShortPanel) {
  CvOptions options = DefaultCvOptions(DatasetProfile::kTransactionAmount);
  EXPECT_FALSE(TimeSeriesCvFolds(9, options).ok());  // needs >= 10
  EXPECT_TRUE(TimeSeriesCvFolds(10, options).ok());
  options.lag_k = 0;
  EXPECT_FALSE(TimeSeriesCvFolds(16, options).ok());
}

}  // namespace
}  // namespace ams::data
