// Tests for the pooled tensor-memory arena (la/pool.h): free-list reuse,
// size-class bucketing, best-fit behaviour for large blocks, cross-thread
// alloc/free (exercised under -DAMS_SANITIZE=thread), and the end-to-end
// guarantee that AMS training runs almost entirely out of the pool.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "ams/ams_model.h"
#include "data/features.h"
#include "data/generator.h"
#include "graph/company_graph.h"
#include "la/matrix.h"
#include "la/pool.h"

namespace ams::la {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Start from an empty cache so reuse assertions see only this test's
    // blocks. The pool is process-global; other suites may have warmed it.
    BufferPool::Global().ReleaseCached();
  }
};

TEST_F(PoolTest, ReusesFreedBlockOfSameClass) {
  BufferPool& pool = BufferPool::Global();
  if (!pool.enabled()) GTEST_SKIP() << "AMS_POOL=off";

  void* p = pool.Allocate(1000);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 1000);  // ASan poisons on misuse
  BufferPool::Free(p);

  const BufferPool::Stats before = pool.GetStats();
  void* q = pool.Allocate(900);  // same 256-byte class as 1000
  EXPECT_EQ(q, p) << "small-class free list should hand back the block";
  const BufferPool::Stats after = pool.GetStats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
  BufferPool::Free(q);
}

TEST_F(PoolTest, RoundsSmallRequestsToOneClass) {
  BufferPool& pool = BufferPool::Global();
  if (!pool.enabled()) GTEST_SKIP() << "AMS_POOL=off";

  // 1 byte and 200 bytes share the minimal 256-byte class.
  void* p = pool.Allocate(1);
  BufferPool::Free(p);
  void* q = pool.Allocate(200);
  EXPECT_EQ(q, p);
  BufferPool::Free(q);
}

TEST_F(PoolTest, BestFitAcceptsNearSizesAndRejectsWastefulOnes) {
  BufferPool& pool = BufferPool::Global();
  if (!pool.enabled()) GTEST_SKIP() << "AMS_POOL=off";

  // Above the 64 KiB exact-class limit blocks go through the best-fit map.
  constexpr size_t kBig = 200 << 10;
  void* p = pool.Allocate(kBig);
  BufferPool::Free(p);

  // A request under half the cached capacity must NOT reuse it (the 2x
  // waste bound), and the cached block stays resident for a better fit.
  BufferPool::Stats s0 = pool.GetStats();
  void* small = pool.Allocate(70 << 10);
  EXPECT_NE(small, p);
  EXPECT_EQ(pool.GetStats().misses, s0.misses + 1);

  // A request within 2x of the cached capacity reuses it.
  s0 = pool.GetStats();
  void* near = pool.Allocate(128 << 10);
  EXPECT_EQ(near, p);
  EXPECT_EQ(pool.GetStats().hits, s0.hits + 1);

  BufferPool::Free(small);
  BufferPool::Free(near);
}

TEST_F(PoolTest, StatsTrackResidentAndInUseBytes) {
  BufferPool& pool = BufferPool::Global();
  if (!pool.enabled()) GTEST_SKIP() << "AMS_POOL=off";

  const BufferPool::Stats s0 = pool.GetStats();
  void* p = pool.Allocate(4096);
  const BufferPool::Stats s1 = pool.GetStats();
  EXPECT_GE(s1.in_use_bytes, s0.in_use_bytes + 4096);

  BufferPool::Free(p);
  const BufferPool::Stats s2 = pool.GetStats();
  EXPECT_GE(s2.resident_bytes, s1.resident_bytes + 4096);
  EXPECT_LE(s2.in_use_bytes, s1.in_use_bytes - 4096);

  pool.ReleaseCached();
  EXPECT_EQ(pool.GetStats().resident_bytes, 0u);
}

TEST_F(PoolTest, CrossThreadAllocFreeIsSafe) {
  BufferPool& pool = BufferPool::Global();
  // Hammer the pool from several threads, including blocks allocated on one
  // thread and freed on another. TSan verifies the locking discipline.
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<void*> handoff(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &pool, &handoff] {
      for (int i = 0; i < kIters; ++i) {
        const size_t bytes = 64 + 97 * ((t * kIters + i) % 50);
        void* p = pool.Allocate(bytes);
        std::memset(p, t, bytes);
        BufferPool::Free(p);
      }
      handoff[t] = pool.Allocate(1024);
    });
  }
  for (std::thread& th : threads) th.join();
  // Free on the main thread what each worker allocated last.
  for (void* p : handoff) BufferPool::Free(p);
  SUCCEED();
}

TEST_F(PoolTest, MatrixChurnHitsTheFreeLists) {
  BufferPool& pool = BufferPool::Global();
  if (!pool.enabled()) GTEST_SKIP() << "AMS_POOL=off";

  // Warm one shape, then re-create it repeatedly: steady-state churn should
  // be all hits — exactly the tape's allocation pattern.
  { Matrix warm(37, 19, 1.0); }
  const BufferPool::Stats s0 = pool.GetStats();
  for (int i = 0; i < 100; ++i) {
    Matrix m(37, 19, static_cast<double>(i));
    ASSERT_EQ(m(0, 0), static_cast<double>(i));
  }
  const BufferPool::Stats s1 = pool.GetStats();
  EXPECT_EQ(s1.hits - s0.hits, 100u);
  EXPECT_EQ(s1.misses, s0.misses);
}

TEST(PoolAmsFitTest, HitRateAboveNinetyPercentDuringTraining) {
  BufferPool& pool = BufferPool::Global();
  if (!pool.enabled()) GTEST_SKIP() << "AMS_POOL=off";

  data::GeneratorConfig gen = data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, 42);
  gen.num_companies = 24;
  gen.num_sectors = 4;
  data::Panel panel = data::GenerateMarket(gen).MoveValue();
  data::FeatureBuilder builder(&panel, data::FeatureOptions{});
  data::Dataset train = builder.Build({4, 5, 6, 7, 8}).MoveValue();
  data::Dataset valid = builder.Build({9}).MoveValue();
  const data::Standardizer standardizer = data::Standardizer::Fit(train);
  standardizer.Apply(&train);
  standardizer.Apply(&valid);
  graph::CorrelationGraphOptions graph_options;
  graph_options.top_k = 3;
  graph::CompanyGraph graph = graph::CompanyGraph::BuildFromRevenue(
                                  panel.RevenueHistories(8), graph_options)
                                  .MoveValue();

  core::AmsConfig config;
  config.node_transform_layers = {16};
  config.gat.hidden_per_head = {4};
  config.gat.num_heads = 2;
  config.gat.out_features = 8;
  config.generator_hidden = {16};
  config.max_epochs = 20;
  config.patience = 10;

  const BufferPool::Stats s0 = pool.GetStats();
  core::AmsModel model(config);
  ASSERT_TRUE(model.Fit(train, valid, graph).ok());
  const BufferPool::Stats s1 = pool.GetStats();

  const uint64_t allocs = s1.allocs - s0.allocs;
  const uint64_t hits = s1.hits - s0.hits;
  ASSERT_GT(allocs, 1000u) << "fit should churn through the pool";
  const double hit_rate = static_cast<double>(hits) / allocs;
  EXPECT_GT(hit_rate, 0.90) << "pool hit rate during AMS fit: " << hit_rate
                            << " (" << hits << "/" << allocs << ")";
}

}  // namespace
}  // namespace ams::la
