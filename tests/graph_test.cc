// Tests for the company correlation graph (paper §III-C).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/company_graph.h"
#include "util/rng.h"

namespace ams::graph {
namespace {

std::vector<std::vector<double>> MakeHistories() {
  // Companies 0/1 move together; 2/3 move together (inverted vs 0/1);
  // 4 is noise-ish but closer to 0/1.
  return {
      {10, 12, 11, 14, 13, 16},   // 0
      {20, 24, 22, 28, 26, 32},   // 1: exactly 2x company 0 -> corr 1
      {30, 28, 29, 26, 27, 24},   // 2: inverted
      {15, 14, 14.5, 13, 13.5, 12},  // 3: tracks 2
      {5, 6, 5.5, 7, 6.5, 8},     // 4: tracks 0
  };
}

TEST(CompanyGraphTest, TopOneLinksPerfectlyCorrelatedPair) {
  CorrelationGraphOptions options;
  options.top_k = 1;
  auto graph = CompanyGraph::BuildFromRevenue(MakeHistories(), options);
  ASSERT_TRUE(graph.ok());
  const CompanyGraph& g = graph.ValueOrDie();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_NEAR(g.Correlation(0, 1), 1.0, 1e-9);
  EXPECT_LT(g.Correlation(0, 2), 0.0);
}

TEST(CompanyGraphTest, SymmetricEdges) {
  CorrelationGraphOptions options;
  options.top_k = 2;
  auto graph = CompanyGraph::BuildFromRevenue(MakeHistories(), options);
  ASSERT_TRUE(graph.ok());
  const CompanyGraph& g = graph.ValueOrDie();
  for (int i = 0; i < g.num_nodes(); ++i) {
    for (int j : g.Neighbors(i)) {
      EXPECT_TRUE(g.HasEdge(j, i)) << i << " <-> " << j;
    }
  }
}

TEST(CompanyGraphTest, DegreeAtLeastTopK) {
  CorrelationGraphOptions options;
  options.top_k = 2;
  auto graph = CompanyGraph::BuildFromRevenue(MakeHistories(), options);
  ASSERT_TRUE(graph.ok());
  // Symmetrization can only add edges beyond each node's own top-k.
  for (int i = 0; i < graph.ValueOrDie().num_nodes(); ++i) {
    EXPECT_GE(graph.ValueOrDie().Degree(i), 2);
  }
}

TEST(CompanyGraphTest, AttentionMaskHasSelfLoops) {
  CorrelationGraphOptions options;
  options.top_k = 1;
  auto graph = CompanyGraph::BuildFromRevenue(MakeHistories(), options);
  ASSERT_TRUE(graph.ok());
  la::Matrix mask = graph.ValueOrDie().AttentionMask();
  for (int i = 0; i < mask.rows(); ++i) {
    EXPECT_DOUBLE_EQ(mask(i, i), 1.0);
    // Mask row mirrors adjacency + self.
    double row_sum = 0;
    for (int j = 0; j < mask.cols(); ++j) row_sum += mask(i, j);
    EXPECT_DOUBLE_EQ(row_sum, 1.0 + graph.ValueOrDie().Degree(i));
  }
}

TEST(CompanyGraphTest, TopKClippedToNodeCount) {
  CorrelationGraphOptions options;
  options.top_k = 100;  // more than peers available
  auto graph = CompanyGraph::BuildFromRevenue(MakeHistories(), options);
  ASSERT_TRUE(graph.ok());
  // Complete graph: every node connected to all 4 others.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(graph.ValueOrDie().Degree(i), 4);
}

TEST(CompanyGraphTest, RejectsDegenerateInput) {
  CorrelationGraphOptions options;
  EXPECT_FALSE(CompanyGraph::BuildFromRevenue({}, options).ok());
  EXPECT_FALSE(
      CompanyGraph::BuildFromRevenue({{1, 2, 3}}, options).ok());
  options.top_k = 0;
  EXPECT_FALSE(
      CompanyGraph::BuildFromRevenue(MakeHistories(), options).ok());
  options.top_k = 1;
  options.min_overlap = 1;
  EXPECT_FALSE(
      CompanyGraph::BuildFromRevenue(MakeHistories(), options).ok());
}

TEST(CompanyGraphTest, HandlesShortOverlap) {
  // One company has a very short history: correlations with it default to 0
  // but the build still succeeds.
  std::vector<std::vector<double>> histories = MakeHistories();
  histories.push_back({42.0, 43.0});
  CorrelationGraphOptions options;
  options.top_k = 1;
  auto graph = CompanyGraph::BuildFromRevenue(histories, options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.ValueOrDie().num_nodes(), 6);
}

TEST(CompanyGraphTest, NumEdgesCountsUndirected) {
  CorrelationGraphOptions options;
  options.top_k = 1;
  auto graph = CompanyGraph::BuildFromRevenue(MakeHistories(), options);
  ASSERT_TRUE(graph.ok());
  int degree_sum = 0;
  for (int i = 0; i < 5; ++i) degree_sum += graph.ValueOrDie().Degree(i);
  EXPECT_EQ(graph.ValueOrDie().NumEdges(), degree_sum / 2);
}

TEST(CompanyGraphTest, DeterministicTieBreak) {
  // Identical data -> identical graphs.
  CorrelationGraphOptions options;
  options.top_k = 2;
  auto g1 = CompanyGraph::BuildFromRevenue(MakeHistories(), options);
  auto g2 = CompanyGraph::BuildFromRevenue(MakeHistories(), options);
  ASSERT_TRUE(g1.ok() && g2.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(g1.ValueOrDie().Neighbors(i), g2.ValueOrDie().Neighbors(i));
  }
}

}  // namespace
}  // namespace ams::graph
