// Network serving harness: AMSNET1 framing round-trips, socket end-to-end
// golden parity against in-process scoring, deterministic admission-control
// behaviour (shed on a full queue, deadline enforcement at admission and at
// pickup), network fault injection with client-side retry recovery, the
// mtime reload watcher, and FromEnv diagnostics.
//
// Determinism recipe for the admission tests: a single net worker over a
// batcher configured with a long co-batching window (max_wait_ms) makes the
// first in-flight request hold the worker for a known minimum time, so a
// bounded queue behind it can be filled — and expired — on schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ams/ams_model.h"
#include "data/features.h"
#include "data/generator.h"
#include "graph/company_graph.h"
#include "obs/metrics.h"
#include "robust/faults.h"
#include "serve/artifact.h"
#include "serve/framing.h"
#include "serve/net_client.h"
#include "serve/net_server.h"
#include "serve/server.h"
#include "util/logging.h"

namespace ams::serve {
namespace {

namespace fs = std::filesystem;

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

::testing::AssertionResult BitIdentical(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (DoubleBits(a[i]) != DoubleBits(b[i])) {
      return ::testing::AssertionFailure() << "bit mismatch at " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

/// Two small fitted models (distinct fingerprints, for reload tests) + a
/// request block, built once per process.
struct Fixture {
  robust::Checkpoint state;
  robust::Checkpoint state_b;
  la::Matrix block;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* fx = new Fixture();
    data::GeneratorConfig config = data::GeneratorConfig::Defaults(
        data::DatasetProfile::kTransactionAmount, 42);
    config.num_companies = 12;
    config.num_sectors = 3;
    data::Panel panel = data::GenerateMarket(config).MoveValue();
    data::FeatureBuilder builder(&panel, data::FeatureOptions{});
    data::Dataset train = builder.Build({4, 5}).MoveValue();
    data::Dataset valid = builder.Build({6}).MoveValue();
    const data::Standardizer standardizer = data::Standardizer::Fit(train);
    standardizer.Apply(&train);
    standardizer.Apply(&valid);
    graph::CorrelationGraphOptions graph_options;
    graph_options.top_k = 3;
    graph::CompanyGraph graph =
        graph::CompanyGraph::BuildFromRevenue(panel.RevenueHistories(4),
                                              graph_options)
            .MoveValue();
    core::AmsConfig cfg;
    cfg.node_transform_layers = {8};
    cfg.gat.hidden_per_head = {4};
    cfg.gat.num_heads = 2;
    cfg.gat.out_features = 4;
    cfg.generator_hidden = {8};
    cfg.max_epochs = 1;
    cfg.patience = 1;
    core::AmsModel model(cfg);
    model.Fit(train, valid, graph).Abort("fit net test model");
    fx->state = model.ExportState().MoveValue();
    core::AmsConfig cfg_b = cfg;
    cfg_b.seed = 43;
    core::AmsModel model_b(cfg_b);
    model_b.Fit(train, valid, graph).Abort("fit net test model B");
    fx->state_b = model_b.ExportState().MoveValue();
    data::Dataset test = builder.Build({7}).MoveValue();
    standardizer.Apply(&test);
    fx->block = test.x;
    return fx;
  }();
  return *fixture;
}

core::AmsModel FixtureModel() {
  return core::AmsModel::FromState(GetFixture().state).MoveValue();
}
core::AmsModel FixtureModelB() {
  return core::AmsModel::FromState(GetFixture().state_b).MoveValue();
}

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("ams_net_test_" + name)).string();
}

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override { robust::FaultInjector::Get().Disarm(); }
  void TearDown() override { robust::FaultInjector::Get().Disarm(); }
};

// ---------------------------------------------------------------------------
// Framing round-trips.
// ---------------------------------------------------------------------------

TEST(NetFraming, ScoreRequestRoundTripIsBitExact) {
  const la::Matrix& block = GetFixture().block;
  const std::string wire = EncodeScoreRequest(77, 250, block);
  ASSERT_GT(wire.size(), 4u);
  auto frame = DecodeFrame(std::string_view(wire).substr(4));
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame.ValueOrDie().type, FrameType::kScoreRequest);
  EXPECT_EQ(frame.ValueOrDie().request_id, 77u);
  EXPECT_EQ(frame.ValueOrDie().deadline_ms, 250u);
  EXPECT_EQ(frame.ValueOrDie().rows, static_cast<uint32_t>(block.rows()));
  EXPECT_EQ(frame.ValueOrDie().cols, static_cast<uint32_t>(block.cols()));
  const std::vector<double> expected(block.data(),
                                     block.data() + block.rows() * block.cols());
  EXPECT_TRUE(BitIdentical(expected, frame.ValueOrDie().payload));
}

TEST(NetFraming, ResponseRoundTripCarriesStatusAndValues) {
  const std::vector<double> values = {1.5, -2.25, 0.0};
  const std::string ok_wire =
      EncodeResponse(FrameType::kScoreResponse, 5, Status::OK(), values);
  auto ok_frame = DecodeFrame(std::string_view(ok_wire).substr(4));
  ASSERT_TRUE(ok_frame.ok()) << ok_frame.status();
  EXPECT_EQ(ok_frame.ValueOrDie().status_code, 0u);
  EXPECT_TRUE(BitIdentical(values, ok_frame.ValueOrDie().values));

  const std::string err_wire =
      EncodeResponse(FrameType::kScoreResponse, 6,
                     Status::Unavailable("queue full"), {});
  auto err_frame = DecodeFrame(std::string_view(err_wire).substr(4));
  ASSERT_TRUE(err_frame.ok()) << err_frame.status();
  EXPECT_EQ(err_frame.ValueOrDie().status_code,
            static_cast<uint32_t>(StatusCode::kUnavailable));
  EXPECT_EQ(err_frame.ValueOrDie().message, "queue full");
  EXPECT_TRUE(err_frame.ValueOrDie().values.empty());
}

TEST(NetFraming, PrefixValidationRejectsHostileLengths) {
  EXPECT_FALSE(ParseFramePrefix(0).ok());
  EXPECT_FALSE(ParseFramePrefix(5).ok());          // below minimum frame
  EXPECT_TRUE(ParseFramePrefix(64).ok());
  EXPECT_TRUE(ParseFramePrefix(kMaxFrameBytes).ok());
  EXPECT_FALSE(ParseFramePrefix(kMaxFrameBytes + 1).ok());
  EXPECT_FALSE(ParseFramePrefix(0xFFFFFFFFu).ok());  // 4 GiB announcement
}

TEST(NetFraming, InfoRequestRoundTrip) {
  const std::string wire = EncodeInfoRequest(9);
  auto frame = DecodeFrame(std::string_view(wire).substr(4));
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame.ValueOrDie().type, FrameType::kInfoRequest);
  EXPECT_EQ(frame.ValueOrDie().request_id, 9u);
}

// ---------------------------------------------------------------------------
// End-to-end socket serving.
// ---------------------------------------------------------------------------

TEST_F(NetTest, SocketScoresAreBitIdenticalToInProcess) {
  InferenceServer inference{ServerOptions{}};
  ASSERT_TRUE(inference.LoadModel(FixtureModel()).ok());
  NetServerOptions options;
  options.num_workers = 2;
  NetServer server(&inference, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const auto direct = inference.Score(GetFixture().block);
  ASSERT_TRUE(direct.ok());

  NetClient client(server.port());
  auto info = client.Info();
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info.ValueOrDie().rows, GetFixture().block.rows());
  EXPECT_EQ(info.ValueOrDie().cols, GetFixture().block.cols());
  EXPECT_EQ(info.ValueOrDie().model_version, 1);

  for (int i = 0; i < 8; ++i) {
    auto scores = client.Score(GetFixture().block);
    ASSERT_TRUE(scores.ok()) << scores.status();
    EXPECT_TRUE(BitIdentical(direct.ValueOrDie(), scores.ValueOrDie()));
  }
  server.Stop();
}

TEST_F(NetTest, UnloadedModelAnswersCleanFailedPrecondition) {
  InferenceServer inference{ServerOptions{}};
  NetServer server(&inference, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  NetClient client(server.port());
  auto info = client.Info();
  EXPECT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kFailedPrecondition);
  auto scores = client.Score(la::Matrix(3, 3, 1.0));
  EXPECT_FALSE(scores.ok());
  EXPECT_EQ(scores.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Admission control: shed and deadline, deterministically.
// ---------------------------------------------------------------------------

/// Server whose one worker is guaranteed busy for >= max_wait_ms once a
/// request is in flight: the batcher's co-batching window holds the lone
/// request open, pinning the worker in Score.
struct SlowRig {
  explicit SlowRig(int max_queue, double wait_ms = 300.0) {
    ServerOptions slow;
    slow.max_batch = 8;  // never fills from one request -> full wait
    slow.max_wait_ms = wait_ms;
    inference = std::make_unique<InferenceServer>(slow);
    inference->LoadModel(FixtureModel()).Abort("load");
    NetServerOptions options;
    options.num_workers = 1;
    options.max_queue = max_queue;
    server = std::make_unique<NetServer>(inference.get(), options);
    server->Start().Abort("start");
  }
  std::unique_ptr<InferenceServer> inference;
  std::unique_ptr<NetServer> server;
};

TEST_F(NetTest, ShedsWithUnavailableWhenQueueIsFull) {
  SlowRig rig(/*max_queue=*/1);
  obs::Counter& shed = obs::MetricsRegistry::Get().GetCounter(
      "serve/requests", {{"outcome", "shed"}});
  const uint64_t shed_before = shed.value();

  // First request occupies the worker for the full co-batch window; the
  // second fills the queue; the third must be shed instantly.
  std::thread first([&] {
    NetClient c(rig.server->port());
    EXPECT_TRUE(c.Score(GetFixture().block).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::thread second([&] {
    NetClient c(rig.server->port());
    EXPECT_TRUE(c.Score(GetFixture().block).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  NetClient overflow(rig.server->port());
  const auto start = std::chrono::steady_clock::now();
  auto result = overflow.Score(GetFixture().block);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(waited_ms, 150.0);  // shed responses never wait for capacity
  EXPECT_GE(shed.value(), shed_before + 1);

  first.join();
  second.join();
  rig.server->Stop();
  const double shed_rate =
      obs::MetricsRegistry::Get().GetGauge("serve/shed_rate").value();
  EXPECT_GT(shed_rate, 0.0);
  EXPECT_LE(shed_rate, 1.0);
}

TEST_F(NetTest, DeadlineExpiredInQueueIsAnsweredNotScored) {
  SlowRig rig(/*max_queue=*/4);
  obs::Counter& deadline = obs::MetricsRegistry::Get().GetCounter(
      "serve/requests", {{"outcome", "deadline"}});
  const uint64_t deadline_before = deadline.value();

  std::thread first([&] {
    NetClient c(rig.server->port());
    EXPECT_TRUE(c.Score(GetFixture().block).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  // Queued behind ~240ms of remaining worker occupancy with a 50ms budget:
  // must come back kDeadlineExceeded from the pickup-time check.
  NetClient expired(rig.server->port());
  auto result = expired.ScoreWithDeadline(GetFixture().block, 50);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(deadline.value(), deadline_before + 1);

  first.join();
  rig.server->Stop();
}

TEST_F(NetTest, SlowPeerExpiresDeadlineAtAdmission) {
  InferenceServer inference{ServerOptions{}};
  ASSERT_TRUE(inference.LoadModel(FixtureModel()).ok());
  NetServer server(&inference, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // The stall (50ms) lands between the frame's first byte and admission,
  // so a 10ms deadline is already dead on arrival — enforced WITHOUT
  // occupying a worker or touching the model.
  auto& injector = robust::FaultInjector::Get();
  ASSERT_TRUE(injector.Configure("slow_peer@net_read=0").ok());
  NetClient client(server.port());
  auto result = client.ScoreWithDeadline(GetFixture().block, 10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // The connection survives an expired deadline; the next request scores.
  auto again = client.Score(GetFixture().block);
  EXPECT_TRUE(again.ok()) << again.status();
  server.Stop();
}

// ---------------------------------------------------------------------------
// Network faults + client retry.
// ---------------------------------------------------------------------------

TEST_F(NetTest, ClientRetriesThroughDroppedWritesAndTornFrames) {
  InferenceServer inference{ServerOptions{}};
  ASSERT_TRUE(inference.LoadModel(FixtureModel()).ok());
  NetServer server(&inference, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const auto direct = inference.Score(GetFixture().block);
  ASSERT_TRUE(direct.ok());

  obs::Counter& injected =
      obs::MetricsRegistry::Get().GetCounter("robust/faults_injected");
  const uint64_t injected_before = injected.value();

  // Attempt 1 loses its response (conn_drop@net_write), attempt 2's request
  // arrives torn (torn_frame@net_read); attempt 3 must succeed, and the
  // recovered scores must still be bit-identical.
  auto& inj = robust::FaultInjector::Get();
  ASSERT_TRUE(inj.Configure("conn_drop@net_write=0,torn_frame@net_read=1").ok());
  NetClient client(server.port());
  auto scores = client.Score(GetFixture().block);
  ASSERT_TRUE(scores.ok()) << scores.status();
  EXPECT_TRUE(BitIdentical(direct.ValueOrDie(), scores.ValueOrDie()));
  EXPECT_EQ(injected.value(), injected_before + 2);
  server.Stop();
}

TEST_F(NetTest, ClientRetriesThroughDroppedAccept) {
  InferenceServer inference{ServerOptions{}};
  ASSERT_TRUE(inference.LoadModel(FixtureModel()).ok());
  NetServer server(&inference, NetServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(
      robust::FaultInjector::Get().Configure("conn_drop@accept=0").ok());
  NetClient client(server.port());  // very first connection is dropped
  auto scores = client.Score(GetFixture().block);
  EXPECT_TRUE(scores.ok()) << scores.status();
  server.Stop();
}

TEST_F(NetTest, TransportFailureSurfacesAfterRetryBudget) {
  NetClientOptions options;
  options.max_attempts = 2;
  NetClient client(1, options);  // port 1: nothing listening
  auto result = client.Score(GetFixture().block);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Overload smoke: concurrent closed-loop clients against a tiny queue.
// ---------------------------------------------------------------------------

TEST_F(NetTest, OverloadYieldsOnlyCleanStatusesAndSomeShedding) {
  InferenceServer inference{ServerOptions{}};
  ASSERT_TRUE(inference.LoadModel(FixtureModel()).ok());
  NetServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  NetServer server(&inference, options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<uint64_t> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&] {
      NetClient client(server.port());
      const auto stop =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
      while (std::chrono::steady_clock::now() < stop) {
        auto result = client.Score(GetFixture().block);
        if (result.ok()) {
          ++ok;
        } else if (result.status().code() == StatusCode::kUnavailable) {
          ++shed;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  server.Stop();

  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(shed.load(), 0u);  // 8 clients vs queue=1: must shed
  EXPECT_EQ(other.load(), 0u);  // never a crash, hang, or dirty error
}

// ---------------------------------------------------------------------------
// Reload watcher (mtime daemon).
// ---------------------------------------------------------------------------

TEST_F(NetTest, ReloadWatcherSwapsOnMtimeChangeAndCountsChecks) {
  const std::string path = TempPath("watched.amsmodel");
  ASSERT_TRUE(SaveAmsArtifact(path, FixtureModel()).ok());

  obs::Counter& checks =
      obs::MetricsRegistry::Get().GetCounter("serve/reload_checks");
  const uint64_t checks_before = checks.value();

  InferenceServer inference{ServerOptions{}};
  ASSERT_TRUE(inference.LoadArtifact(path).ok());
  ASSERT_TRUE(inference.StartReloadWatcher(path, /*interval_ms=*/20).ok());
  EXPECT_EQ(inference.StartReloadWatcher(path).code(),
            StatusCode::kFailedPrecondition);  // one watcher at a time
  EXPECT_EQ(inference.model_version(), 1);

  // Overwrite with a differently-seeded model: mtime moves, the
  // fingerprint differs, the watcher must swap it in unprompted.
  ASSERT_TRUE(SaveAmsArtifact(path, FixtureModelB()).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (inference.model_version() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(inference.model_version(), 2);
  EXPECT_GE(checks.value(), checks_before + 1);  // the daemon was probing

  inference.StopReloadWatcher();
  inference.StopReloadWatcher();  // idempotent
  fs::remove(path);
}

TEST_F(NetTest, ReloadWatcherShutdownJoinsCleanlyMidInterval) {
  const std::string path = TempPath("watched_join.amsmodel");
  ASSERT_TRUE(SaveAmsArtifact(path, FixtureModel()).ok());
  const auto start = std::chrono::steady_clock::now();
  {
    InferenceServer inference{ServerOptions{}};
    ASSERT_TRUE(inference.LoadArtifact(path).ok());
    // Long interval: the destructor must interrupt the wait, not ride it out.
    ASSERT_TRUE(inference.StartReloadWatcher(path, 60000.0).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_LT(elapsed_ms, 5000.0);  // nowhere near the 60s interval
  fs::remove(path);
}

TEST_F(NetTest, ReloadWatcherToleratesMissingFile) {
  const std::string path = TempPath("not_yet_there.amsmodel");
  fs::remove(path);
  InferenceServer inference{ServerOptions{}};
  ASSERT_TRUE(inference.LoadModel(FixtureModel()).ok());
  ASSERT_TRUE(inference.StartReloadWatcher(path, 10).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(inference.model_version(), 1);  // still serving, no error spiral
  inference.StopReloadWatcher();
}

// ---------------------------------------------------------------------------
// FromEnv diagnostics (satellite: unparseable values must warn, not vanish).
// ---------------------------------------------------------------------------

TEST_F(NetTest, FromEnvWarnsOnceEachForUnparseableValues) {
  std::ostringstream captured;
  SetLogSink(&captured);
  ::setenv("AMS_SERVE_QUEUE", "banana", 1);
  ::setenv("AMS_SERVE_DEADLINE_MS", "-5", 1);
  ::setenv("AMS_SERVE_BATCH", "1e", 1);
  const NetServerOptions net = NetServerOptions::FromEnv();
  const ServerOptions srv = ServerOptions::FromEnv();
  SetLogSink(nullptr);
  ::unsetenv("AMS_SERVE_QUEUE");
  ::unsetenv("AMS_SERVE_DEADLINE_MS");
  ::unsetenv("AMS_SERVE_BATCH");

  EXPECT_EQ(net.max_queue, NetServerOptions{}.max_queue);
  EXPECT_EQ(net.default_deadline_ms, NetServerOptions{}.default_deadline_ms);
  EXPECT_EQ(srv.max_batch, ServerOptions{}.max_batch);

  const std::string log = captured.str();
  for (const char* name :
       {"AMS_SERVE_QUEUE", "AMS_SERVE_DEADLINE_MS", "AMS_SERVE_BATCH"}) {
    const size_t first = log.find(name);
    EXPECT_NE(first, std::string::npos) << "no warning for " << name;
    EXPECT_EQ(log.find(name, first + 1), std::string::npos)
        << "more than one warning for " << name;
  }
  EXPECT_NE(log.find("banana"), std::string::npos);  // offending value shown
}

}  // namespace
}  // namespace ams::serve
