// Tests for the live introspection plane (obs/admin.h) and the crash-time
// flight recorder (obs/flight.h): endpoint routing and payloads against a
// real loopback socket, the /healthz SLO flip, torn-scrape fault injection
// through the write hook, wait-free flight recording, and the
// async-signal-safe crash dump (a gtest death test that SIGABRTs a child
// and parses the dump it left behind).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/admin.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace ams::obs {
namespace {

/// One blocking HTTP GET against 127.0.0.1:port; returns the raw response
/// (empty on transport failure). `raw_request` overrides the request bytes
/// for malformed-input tests.
std::string HttpRequest(int port, const std::string& raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw_request.size()) {
    const ssize_t n = ::send(fd, raw_request.data() + sent,
                             raw_request.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      break;
    }
  }
  // Half-close so a server waiting for more request bytes sees EOF instead
  // of stalling until its read timeout.
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<size_t>(n));
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      break;
    }
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return HttpRequest(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

int HttpCode(const std::string& response) {
  // "HTTP/1.0 NNN ..."
  const size_t space = response.find(' ');
  if (space == std::string::npos || space + 4 > response.size()) return -1;
  return std::atoi(response.substr(space + 1, 3).c_str());
}

std::string HttpBody(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

/// RAII admin server on a kernel-assigned port.
class AdminFixture {
 public:
  AdminFixture() {
    AdminServerOptions options;
    options.port = 0;
    server_ = std::make_unique<AdminServer>(options);
    const Status status = server_->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  ~AdminFixture() { server_->Stop(); }
  int port() const { return server_->port(); }
  AdminServer* server() { return server_.get(); }

 private:
  std::unique_ptr<AdminServer> server_;
};

// --- flight recorder (before anything Enables it: /flightz 404 first) ------

TEST(AdminServerTest, FlightzIs404WhileRecorderDisabled) {
  ASSERT_FALSE(FlightRecorder::Get().enabled())
      << "this test must run before anything enables the flight recorder";
  AdminFixture admin;
  const std::string response = HttpGet(admin.port(), "/flightz");
  EXPECT_EQ(HttpCode(response), 404);
  EXPECT_NE(HttpBody(response).find("AMS_FLIGHT_RECORDER"), std::string::npos);
}

TEST(FlightRecorderTest, RecordsEventsAndSnapshotsInOrder) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(64);
  const uint64_t before = recorder.total_recorded();
  recorder.Record(FlightEventKind::kMark, "first", 11, 22);
  recorder.Record(FlightEventKind::kMark, "second", 33, 44);
  const std::vector<FlightRecorder::Event> events = recorder.SnapshotEvents();
  ASSERT_GE(events.size(), 2u);
  const FlightRecorder::Event& a = events[events.size() - 2];
  const FlightRecorder::Event& b = events[events.size() - 1];
  EXPECT_EQ(a.text, "first");
  EXPECT_EQ(a.a, 11u);
  EXPECT_EQ(a.b, 22u);
  EXPECT_EQ(b.text, "second");
  EXPECT_EQ(b.seq, a.seq + 1);
  EXPECT_GE(b.ts_us, a.ts_us);
  EXPECT_EQ(recorder.total_recorded(), before + 2);
}

TEST(FlightRecorderTest, ControlBytesAndOverlongTextAreSanitized) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(64);
  std::string hostile = "evil\nmulti\rline\x01";
  hostile += std::string(500, 'x');  // far past kTextBytes
  recorder.Record(FlightEventKind::kLog, hostile.c_str());
  const std::vector<FlightRecorder::Event> events = recorder.SnapshotEvents();
  ASSERT_FALSE(events.empty());
  const std::string& text = events.back().text;
  EXPECT_LT(text.size(), FlightRecorder::kTextBytes);
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_EQ(text.find('\r'), std::string::npos);
  EXPECT_EQ(text.find('\x01'), std::string::npos);
  EXPECT_EQ(text.substr(0, 16), "evil_multi_line_");
}

TEST(FlightRecorderTest, RingOverwritesOldestAndDumpSkipsNothingValid) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(64);  // capacity was fixed by the first Enable in this run
  const size_t capacity = recorder.capacity();
  for (size_t i = 0; i < capacity + 10; ++i) {
    recorder.Record(FlightEventKind::kMark, "spin", i);
  }
  const std::vector<FlightRecorder::Event> events = recorder.SnapshotEvents();
  EXPECT_EQ(events.size(), capacity);
  // Strictly consecutive seq numbers: the dump window is the newest
  // `capacity` records with no torn slots at rest.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST(FlightRecorderTest, DumpToFdIsParseable) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(64);
  recorder.Record(FlightEventKind::kServeOutcome, "ok", 7, 1234);
  const std::string path = ::testing::TempDir() + "/flight_dump_test.txt";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  recorder.DumpToFd(::fileno(file), "test");
  std::fclose(file);
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("ams-flight-recorder-v1 reason=test ", 0), 0u);
  bool saw_outcome = false;
  for (std::string line; std::getline(in, line);) {
    ASSERT_EQ(line.rfind("E ", 0), 0u) << line;
    if (line.find(" serve_outcome 7 1234 ok") != std::string::npos) {
      saw_outcome = true;
    }
  }
  EXPECT_TRUE(saw_outcome);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ConcurrentRecordersNeverTearTheDump) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        recorder.Record(FlightEventKind::kMark, "race", t, ++i);
      }
    });
  }
  // Snapshot while writers hammer the ring: slots mid-rewrite are skipped,
  // so every returned event is complete — nonzero seq, and "race" events
  // carry exactly the payload some writer stored.
  for (int round = 0; round < 50; ++round) {
    for (const FlightRecorder::Event& event : recorder.SnapshotEvents()) {
      ASSERT_GT(event.seq, 0u);
      if (event.text == "race") {
        EXPECT_LT(event.a, 4u);  // the writer's thread index
        EXPECT_GT(event.b, 0u);
      }
    }
    std::this_thread::yield();  // single-core hosts: let the writers run
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& writer : writers) writer.join();
  // With the writers quiesced the ring must be full of their events.
  bool saw_any = false;
  for (const FlightRecorder::Event& event : recorder.SnapshotEvents()) {
    if (event.text == "race") {
      saw_any = true;
      EXPECT_LT(event.a, 4u);
      EXPECT_GT(event.b, 0u);
    }
  }
  EXPECT_TRUE(saw_any);
}

TEST(FlightRecorderDeathTest, CrashDumpSurvivesSigabrt) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = ::testing::TempDir() + "/flight_crash_test.txt";
  std::remove(path.c_str());
  EXPECT_DEATH(
      {
        FlightRecorder& recorder = FlightRecorder::Get();
        ASSERT_TRUE(recorder.InstallCrashDump(path, 64).ok());
        recorder.Record(FlightEventKind::kServeOutcome, "deadline", 42, 500);
        std::abort();
      },
      "");
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash dump file missing: " << path;
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("ams-flight-recorder-v1 reason=signal:SIGABRT", 0),
            0u)
      << header;
  bool saw_outcome = false;
  for (std::string line; std::getline(in, line);) {
    if (line.find(" serve_outcome 42 500 deadline") != std::string::npos) {
      saw_outcome = true;
    }
  }
  EXPECT_TRUE(saw_outcome);
  std::remove(path.c_str());
}

// --- admin endpoints --------------------------------------------------------

TEST(AdminServerTest, IndexListsEveryEndpoint) {
  AdminFixture admin;
  const std::string response = HttpGet(admin.port(), "/");
  EXPECT_EQ(HttpCode(response), 200);
  const std::string body = HttpBody(response);
  for (const char* endpoint : {"/metrics", "/metrics.json", "/healthz",
                               "/tracez", "/profilez", "/varz", "/flightz"}) {
    EXPECT_NE(body.find(endpoint), std::string::npos) << endpoint;
  }
}

TEST(AdminServerTest, MetricsServesPrometheusTextWithLabels) {
  MetricsRegistry::Get().GetCounter("admin_test/scrapes").Add(5);
  MetricsRegistry::Get()
      .GetCounter("admin_test/labeled", {{"outcome", "o\"k"}})
      .Add(3);
  AdminFixture admin;
  const std::string response = HttpGet(admin.port(), "/metrics");
  ASSERT_EQ(HttpCode(response), 200);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = HttpBody(response);
  EXPECT_NE(body.find("# TYPE admin_test_scrapes counter"),
            std::string::npos);
  EXPECT_NE(body.find("admin_test_scrapes 5"), std::string::npos);
  EXPECT_NE(body.find("admin_test_labeled{outcome=\"o\\\"k\"} 3"),
            std::string::npos);
  // Content-Length matches the body exactly (scrapers rely on it).
  const size_t cl_pos = response.find("Content-Length: ");
  ASSERT_NE(cl_pos, std::string::npos);
  EXPECT_EQ(static_cast<size_t>(std::atoi(
                response.c_str() + cl_pos + std::strlen("Content-Length: "))),
            body.size());
}

TEST(AdminServerTest, MetricsJsonServesTheJsonReport) {
  MetricsRegistry::Get().GetCounter("admin_test/json_scrapes").Add(2);
  AdminFixture admin;
  const std::string response = HttpGet(admin.port(), "/metrics.json");
  ASSERT_EQ(HttpCode(response), 200);
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  const std::string body = HttpBody(response);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("\"admin_test/json_scrapes\":2"), std::string::npos);
}

TEST(AdminServerTest, HealthzFlipsTo503AndBackWithTheGauge) {
  Gauge& gauge = MetricsRegistry::Get().GetGauge("admin_test/health_gauge");
  gauge.Set(0.0);
  ASSERT_TRUE(
      HealthMonitor::ConfigureGlobal("admin_test/health_gauge:<5").ok());
  AdminFixture admin;

  EXPECT_EQ(HttpCode(HttpGet(admin.port(), "/healthz")), 200);

  gauge.Set(10.0);
  const std::string degraded = HttpGet(admin.port(), "/healthz");
  EXPECT_EQ(HttpCode(degraded), 503);
  EXPECT_NE(HttpBody(degraded).find("admin_test/health_gauge:<5"),
            std::string::npos);

  gauge.Set(1.0);
  EXPECT_EQ(HttpCode(HttpGet(admin.port(), "/healthz")), 200);

  ASSERT_TRUE(HealthMonitor::ConfigureGlobal("").ok());
}

TEST(AdminServerTest, HealthzWithoutSloIsOk) {
  ASSERT_TRUE(HealthMonitor::ConfigureGlobal("").ok());
  AdminFixture admin;
  const std::string response = HttpGet(admin.port(), "/healthz");
  EXPECT_EQ(HttpCode(response), 200);
  EXPECT_NE(HttpBody(response).find("no AMS_SLO"), std::string::npos);
}

TEST(AdminServerTest, TracezServesRecentSpansWithIds) {
  AdminFixture admin;  // Start() enables the trace ring
  {
    AMS_TRACE_SPAN("admin_test/outer");
    AMS_TRACE_SPAN("admin_test/inner");
  }
  const std::string response = HttpGet(admin.port(), "/tracez?n=50");
  ASSERT_EQ(HttpCode(response), 200);
  const std::string body = HttpBody(response);
  EXPECT_NE(body.find("\"admin_test/inner\""), std::string::npos);
  EXPECT_NE(body.find("\"trace_id\":"), std::string::npos);
  EXPECT_NE(body.find("\"parent_id\":"), std::string::npos);
}

TEST(AdminServerTest, VarzReportsConfigAndFingerprint) {
  AdminFixture admin;
  const std::string response = HttpGet(admin.port(), "/varz");
  ASSERT_EQ(HttpCode(response), 200);
  const std::string body = HttpBody(response);
  EXPECT_NE(body.find("\"config_fingerprint\":"), std::string::npos);
  EXPECT_NE(body.find("\"AMS_SLO\":"), std::string::npos);
  EXPECT_NE(body.find("\"components\":"), std::string::npos);
}

TEST(AdminServerTest, ProfilezReturnsFoldedStacks) {
  AdminFixture admin;
  // Keep a span open in another thread so the profile has a frame to see.
  std::atomic<bool> stop{false};
  std::thread busy([&stop] {
    AMS_TRACE_SPAN("admin_test/busy_loop");
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const std::string response = HttpGet(admin.port(), "/profilez?seconds=1");
  stop.store(true, std::memory_order_relaxed);
  busy.join();
  ASSERT_EQ(HttpCode(response), 200);
  // Folded output: "frame[;frame...] count" lines (or "(idle) N").
  EXPECT_NE(HttpBody(response).find("admin_test/busy_loop"),
            std::string::npos);
}

TEST(AdminServerTest, FlightzServesTheLiveRingOnceEnabled) {
  FlightRecorder::Get().Enable(64);
  FlightRecorder::Get().Record(FlightEventKind::kMark, "flightz_probe");
  AdminFixture admin;
  const std::string response = HttpGet(admin.port(), "/flightz");
  ASSERT_EQ(HttpCode(response), 200);
  const std::string body = HttpBody(response);
  EXPECT_EQ(body.rfind("ams-flight-recorder-v1 reason=live", 0), 0u);
  EXPECT_NE(body.find("flightz_probe"), std::string::npos);
}

// --- protocol strictness ----------------------------------------------------

TEST(AdminServerTest, UnknownPathIs404) {
  AdminFixture admin;
  EXPECT_EQ(HttpCode(HttpGet(admin.port(), "/nope")), 404);
}

TEST(AdminServerTest, NonGetMethodIs405) {
  AdminFixture admin;
  const std::string response =
      HttpRequest(admin.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(HttpCode(response), 405);
}

TEST(AdminServerTest, MalformedRequestLineIs400) {
  AdminFixture admin;
  EXPECT_EQ(HttpCode(HttpRequest(admin.port(), "GARBAGE\r\n\r\n")), 400);
  EXPECT_EQ(HttpCode(HttpRequest(admin.port(), "GET /metrics\r\n\r\n")), 400);
  EXPECT_EQ(
      HttpCode(HttpRequest(admin.port(), "GET metrics HTTP/1.0\r\n\r\n")),
      400);
}

TEST(AdminServerTest, TruncatedRequestIs400) {
  AdminFixture admin;
  // EOF before the blank line (HttpRequest half-closes after sending).
  EXPECT_EQ(HttpCode(HttpRequest(admin.port(), "GET /metrics HTT")), 400);
}

TEST(AdminServerTest, OversizedHeaderBlockIs431) {
  AdminFixture admin;
  std::string request = "GET /metrics HTTP/1.0\r\nX-Filler: ";
  request += std::string(AdminServer::kMaxRequestBytes, 'a');
  request += "\r\n\r\n";
  EXPECT_EQ(HttpCode(HttpRequest(admin.port(), request)), 431);
}

TEST(AdminServerTest, ScrapeCountersTrackRequestsAndErrors) {
  Counter& requests =
      MetricsRegistry::Get().GetCounter("obs/admin_requests");
  Counter& errors =
      MetricsRegistry::Get().GetCounter("obs/admin_http_errors");
  AdminFixture admin;
  const uint64_t requests_before = requests.value();
  const uint64_t errors_before = errors.value();
  EXPECT_EQ(HttpCode(HttpGet(admin.port(), "/")), 200);
  EXPECT_EQ(HttpCode(HttpGet(admin.port(), "/nope")), 404);
  EXPECT_EQ(requests.value(), requests_before + 2);
  EXPECT_EQ(errors.value(), errors_before + 1);
}

// --- torn-scrape fault hook -------------------------------------------------

std::atomic<int> g_torn_budget{0};
bool TornBudgetHook() {
  return g_torn_budget.fetch_sub(1, std::memory_order_relaxed) > 0;
}

TEST(AdminServerTest, WriteFaultHookTearsExactlyTheArmedScrapes) {
  MetricsRegistry::Get().GetCounter("admin_test/torn_probe").Add(1);
  AdminFixture admin;
  AdminServer::SetWriteFaultHook(&TornBudgetHook);
  g_torn_budget.store(1, std::memory_order_relaxed);

  // First scrape: torn — some prefix of the response, never the whole.
  const std::string full = HttpGet(admin.port(), "/metrics");
  AdminServer::SetWriteFaultHook(nullptr);
  const std::string intact = HttpGet(admin.port(), "/metrics");
  ASSERT_EQ(HttpCode(intact), 200);
  EXPECT_LT(full.size(), intact.size());

  // The torn scrape is visible in telemetry.
  EXPECT_GE(
      MetricsRegistry::Get().GetCounter("obs/admin_torn_scrapes").value(),
      1u);
}

// --- options ----------------------------------------------------------------

TEST(AdminServerOptionsTest, DisabledWithoutEnv) {
  ::unsetenv("AMS_ADMIN_PORT");
  const AdminServerOptions options = AdminServerOptions::FromEnv();
  EXPECT_FALSE(options.enabled());
  EXPECT_EQ(options.port, -1);
}

TEST(AdminServerOptionsTest, EnvOverridesParseThroughEnvUtil) {
  ::setenv("AMS_ADMIN_PORT", "0", 1);
  ::setenv("AMS_ADMIN_MAX_INFLIGHT", "3", 1);
  ::setenv("AMS_ADMIN_TIMEOUT_MS", "1500", 1);
  const AdminServerOptions options = AdminServerOptions::FromEnv();
  EXPECT_TRUE(options.enabled());
  EXPECT_EQ(options.port, 0);
  EXPECT_EQ(options.max_inflight, 3);
  EXPECT_EQ(options.timeout_ms, 1500);
  ::unsetenv("AMS_ADMIN_PORT");
  ::unsetenv("AMS_ADMIN_MAX_INFLIGHT");
  ::unsetenv("AMS_ADMIN_TIMEOUT_MS");
}

TEST(AdminServerTest, StopIsIdempotentAndPortResets) {
  AdminServerOptions options;
  options.port = 0;
  AdminServer server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  EXPECT_EQ(server.port(), 0);
  server.Stop();  // idempotent
}

TEST(AdminServerTest, ConcurrentScrapesAllSucceed) {
  MetricsRegistry::Get().GetCounter("admin_test/concurrent").Add(1);
  AdminFixture admin;
  std::vector<std::thread> scrapers;
  std::atomic<int> ok{0};
  for (int i = 0; i < 8; ++i) {
    scrapers.emplace_back([&admin, &ok] {
      for (int j = 0; j < 5; ++j) {
        const std::string response = HttpGet(admin.port(), "/metrics");
        // Under max_inflight pressure a scrape may be answered 503; both
        // are clean HTTP, never a hang or a torn response.
        const int code = HttpCode(response);
        if (code == 200) ok.fetch_add(1, std::memory_order_relaxed);
        EXPECT_TRUE(code == 200 || code == 503) << code;
      }
    });
  }
  for (auto& scraper : scrapers) scraper.join();
  EXPECT_GT(ok.load(), 0);
}

}  // namespace
}  // namespace ams::obs
