// Fuzz / property tests for the AMSNET1 frame decoder — the network
// serving stack's untrusted-input surface (serve/framing.h).
//
// Deterministic (fixed-seed) mutation fuzzing, run under
// -DAMS_SANITIZE=address in tools/check_serve.sh: every input below must
// come back as either a clean error Status or a well-formed Frame — never
// a crash, hang, out-of-bounds read, or sanitizer report.
//
// Three regimes, mirroring the artifact fuzzer in serve_fuzz_test.cc:
//   * raw mutations leave the CRC32 footer stale, so the CRC check must
//     reject (or, rarely, the mutation cancels itself — then the frame must
//     still be well-formed);
//   * re-CRC'd mutations recompute the footer over the mutated body,
//     deliberately bypassing the CRC to exercise the bounds-checked field
//     reader underneath;
//   * hostile length prefixes (0, tiny, 4 GiB) against ParseFramePrefix and
//     a real socket via ReadFrameBody.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "la/matrix.h"
#include "robust/atomic_io.h"
#include "serve/framing.h"
#include "util/rng.h"
#include "util/status.h"

namespace ams::serve {
namespace {

/// Body bytes (everything after the length prefix) of a valid frame.
std::string BodyOf(const std::string& wire) {
  EXPECT_GT(wire.size(), 4u);
  return wire.substr(4);
}

/// Recomputes the CRC footer over [magic .. end of mutated body], the same
/// way the encoder does, so mutations reach the field reader.
std::string Refooter(std::string body) {
  if (body.size() < 4) return body;
  const uint32_t crc = robust::Crc32(body.data(), body.size() - 4);
  std::memcpy(body.data() + body.size() - 4, &crc, sizeof(crc));
  return body;
}

/// One deterministic mutation: bit flip, byte splice, truncation, or
/// duplication, chosen and located by `rng` (serve_fuzz_test.cc idiom).
std::string Mutate(const std::string& input, Rng* rng) {
  std::string bytes = input;
  switch (rng->UniformInt(4)) {
    case 0: {  // flip 1-8 random bits
      const int flips = 1 + static_cast<int>(rng->UniformInt(8));
      for (int i = 0; i < flips && !bytes.empty(); ++i) {
        const size_t pos = rng->UniformInt(bytes.size());
        bytes[pos] ^= static_cast<char>(1u << rng->UniformInt(8));
      }
      break;
    }
    case 1: {  // overwrite a random run with random bytes
      if (bytes.empty()) break;
      const size_t pos = rng->UniformInt(bytes.size());
      const size_t len =
          std::min(bytes.size() - pos, rng->UniformInt(64) + size_t{1});
      for (size_t i = 0; i < len; ++i) {
        bytes[pos + i] = static_cast<char>(rng->UniformInt(256));
      }
      break;
    }
    case 2:  // truncate to a random prefix
      bytes.resize(rng->UniformInt(bytes.size() + 1));
      break;
    default: {  // duplicate a random slice into the middle
      if (bytes.empty()) break;
      const size_t pos = rng->UniformInt(bytes.size());
      const size_t len =
          std::min(bytes.size() - pos, rng->UniformInt(32) + size_t{1});
      bytes.insert(pos, bytes.substr(pos, len));
      break;
    }
  }
  return bytes;
}

std::vector<std::string> SeedBodies() {
  la::Matrix block(6, 5);
  for (int r = 0; r < block.rows(); ++r) {
    for (int c = 0; c < block.cols(); ++c) {
      block(r, c) = 0.25 * r - 1.5 * c;
    }
  }
  return {
      BodyOf(EncodeScoreRequest(12345, 250, block)),
      BodyOf(EncodeInfoRequest(7)),
      BodyOf(EncodeResponse(FrameType::kScoreResponse, 12345, Status::OK(),
                            {1.0, -2.5, 3.75})),
      BodyOf(EncodeResponse(FrameType::kInfoResponse, 7,
                            Status::Unavailable("overloaded: queue at limit"),
                            {})),
  };
}

/// The property every fuzzed input must satisfy: DecodeFrame returns a
/// Status or a frame whose variable-size fields agree with their counts.
void ExpectCleanDecode(const std::string& body) {
  auto result = DecodeFrame(body);
  if (!result.ok()) return;  // clean rejection
  const Frame& frame = result.ValueOrDie();
  if (frame.type == FrameType::kScoreRequest) {
    ASSERT_EQ(frame.payload.size(),
              static_cast<size_t>(frame.rows) * frame.cols);
  }
  ASSERT_LE(frame.message.size(), body.size());
  ASSERT_LE(frame.values.size() * sizeof(double), body.size());
}

TEST(FramingFuzz, RandomBytesNeverCrashTheDecoder) {
  Rng rng(20260809);
  for (int trial = 0; trial < 4000; ++trial) {
    std::string body(rng.UniformInt(256), '\0');
    for (char& b : body) b = static_cast<char>(rng.UniformInt(256));
    // Pure noise essentially never carries a valid magic + CRC.
    EXPECT_FALSE(DecodeFrame(body).ok());
  }
}

TEST(FramingFuzz, TruncationAtEveryLengthIsACleanStatus) {
  for (const std::string& body : SeedBodies()) {
    for (size_t len = 0; len < body.size(); ++len) {
      auto result = DecodeFrame(std::string_view(body).substr(0, len));
      EXPECT_FALSE(result.ok()) << "truncation to " << len << " accepted";
    }
  }
}

TEST(FramingFuzz, StaleCrcMutationsAreRejected) {
  Rng rng(99);
  for (const std::string& body : SeedBodies()) {
    for (int trial = 0; trial < 1500; ++trial) {
      const std::string mutated = Mutate(body, &rng);
      if (mutated == body) continue;
      // A stale footer must fail the CRC check (a mutation confined to the
      // footer itself fails it just the same).
      ExpectCleanDecode(mutated);
    }
  }
}

TEST(FramingFuzz, RefooteredMutationsReachTheFieldReaderSafely) {
  Rng rng(1234);
  for (const std::string& body : SeedBodies()) {
    for (int trial = 0; trial < 1500; ++trial) {
      // Valid CRC over hostile contents: the bounds-checked reader is now
      // the only line of defence. Status or well-formed frame; never UB.
      ExpectCleanDecode(Refooter(Mutate(body, &rng)));
    }
  }
}

TEST(FramingFuzz, BitFlipsAnywhereInTheFrameAreAlwaysRejected) {
  const std::string body = SeedBodies()[0];
  for (size_t pos = 0; pos < body.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = body;
      flipped[pos] ^= static_cast<char>(1u << bit);
      // Any single-bit flip breaks either a field the reader checks or the
      // CRC — there is no bit whose corruption goes unnoticed.
      EXPECT_FALSE(DecodeFrame(flipped).ok())
          << "bit " << bit << " at byte " << pos << " accepted";
    }
  }
}

TEST(FramingFuzz, HostileCountFieldsWithValidCrcAreBoundsChecked) {
  // Surgical attacks on each count field of a score request: rows/cols that
  // multiply past the buffer (or overflow u32), then re-CRC so only the
  // field reader can save us.
  la::Matrix block(2, 2, 1.0);
  const std::string body = BodyOf(EncodeScoreRequest(1, 0, block));
  const size_t rows_off = 8 + 1 + 8 + 4;  // magic, type, id, deadline
  for (uint32_t hostile : {0u, 3u, 1000u, 0x10000u, 0xFFFFFFFFu}) {
    std::string attacked = body;
    std::memcpy(attacked.data() + rows_off, &hostile, sizeof(hostile));
    ExpectCleanDecode(Refooter(attacked));
    std::memcpy(attacked.data() + rows_off + 4, &hostile, sizeof(hostile));
    ExpectCleanDecode(Refooter(attacked));
  }
}

TEST(FramingFuzz, HostileLengthPrefixOnARealSocketIsRejectedNotAllocated) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  std::thread writer([&] {
    const uint32_t hostile = 0xFFFFFFFFu;  // announce 4 GiB
    (void)::send(fds[1], &hostile, sizeof(hostile), 0);
    ::close(fds[1]);
  });
  std::string body;
  const Status status = ReadFrameBody(fds[0], &body);
  writer.join();
  ::close(fds[0]);
  EXPECT_FALSE(status.ok());  // rejected before any 4 GiB allocation
  EXPECT_TRUE(body.empty());
}

TEST(FramingFuzz, ShortFrameBodyOnARealSocketIsACleanIoError) {
  int fds[2];
  ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
  const std::string wire = EncodeInfoRequest(3);
  std::thread writer([&] {
    // Send the prefix and half the body, then slam the connection shut.
    (void)::send(fds[1], wire.data(), 4 + (wire.size() - 4) / 2, 0);
    ::close(fds[1]);
  });
  std::string body;
  const Status status = ReadFrameBody(fds[0], &body);
  writer.join();
  ::close(fds[0]);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ams::serve
