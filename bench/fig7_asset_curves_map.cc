// Reproduces Fig. 7: daily asset curves of every model's strategy on the
// map-query dataset (CSV series to stdout).
//
// Usage: fig7_asset_curves_map [--seed=42] [--trials=N]
#include "bench/backtest_common.h"
#include "obs/report.h"

int main(int argc, char** argv) {
  ams::obs::InstallExitReporter();
  auto run = ams::bench::RunBacktests(ams::data::DatasetProfile::kMapQuery,
                                      argc, argv);
  ams::bench::PrintAssetCurves(
      run, "Fig. 7 — strategy asset curves, map query dataset");
  return 0;
}
