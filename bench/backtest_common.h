// Shared driver for the backtest benches (Tables IV/V, Figures 6/7): runs
// the cross-validation experiment, replays every model's predictions through
// the market simulator, and returns per-model backtest results.
#ifndef AMS_BENCH_BACKTEST_COMMON_H_
#define AMS_BENCH_BACKTEST_COMMON_H_

#include <string>
#include <utility>
#include <vector>

#include "backtest/backtest.h"
#include "bench/bench_util.h"

namespace ams::bench {

struct BacktestRun {
  models::ExperimentResult experiment;
  std::vector<std::pair<std::string, backtest::BacktestResult>> results;
};

/// Runs the experiment for `profile` and backtests every learned model
/// (ARIMA/QoQ/YoY are excluded, matching the paper's Table IV/V roster).
inline BacktestRun RunBacktests(data::DatasetProfile profile, int argc,
                                char** argv) {
  models::ExperimentConfig config =
      ParseExperimentFlags(argc, argv, profile);
  config.model_filter = models::LearnedModelNames();
  auto result = models::RunExperimentCached(config);
  result.status().Abort("experiment");

  BacktestRun run;
  run.experiment = result.MoveValue();

  backtest::BacktestConfig bt_config;
  bt_config.seed = config.seed;
  backtest::Backtester backtester(&run.experiment.panel, bt_config);

  for (const models::ModelOutcome& model : run.experiment.models) {
    std::vector<backtest::QuarterPositions> quarters;
    for (size_t f = 0; f < model.folds.size(); ++f) {
      backtest::QuarterPositions positions;
      positions.test_quarter = model.folds[f].test_quarter;
      positions.predicted_ur = model.folds[f].predicted_ur;
      positions.meta = run.experiment.fold_test_meta[f];
      quarters.push_back(std::move(positions));
    }
    auto bt = backtester.Run(quarters);
    bt.status().Abort("backtest");
    run.results.emplace_back(model.name, bt.MoveValue());
  }
  return run;
}

/// Prints the Table IV/V rows: Earning, MDD, Sharpe vs AMS, AER vs AMS.
inline void PrintBacktestTable(const BacktestRun& run, const char* title) {
  const backtest::BacktestResult* ams_result = nullptr;
  for (const auto& [name, result] : run.results) {
    if (name == "AMS") ams_result = &result;
  }
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Model", "Earning(%)", "MDD(%)", "Sharpe Ratio", "AER(%)"});
  for (const auto& [name, result] : run.results) {
    std::vector<std::string> row = {name,
                                    FormatDouble(result.earning_pct, 4),
                                    FormatDouble(result.mdd_pct, 4)};
    if (name == "AMS" || ams_result == nullptr) {
      row.push_back("-");
      row.push_back("-");
    } else {
      auto sharpe = backtest::SharpeVsReference(result.daily_returns,
                                                ams_result->daily_returns);
      auto aer = backtest::AverageExcessReturn(
          result.quarter_returns_pct, ams_result->quarter_returns_pct);
      row.push_back(sharpe.ok() ? FormatDouble(sharpe.ValueOrDie(), 4)
                                : "n/a");
      row.push_back(aer.ok() ? FormatDouble(aer.ValueOrDie(), 4) : "n/a");
    }
    rows.push_back(row);
  }
  std::printf("%s\n%s\n", title, RenderTable(rows).c_str());
}

/// Prints the Fig. 6/7 series: one asset-curve column per model.
inline void PrintAssetCurves(const BacktestRun& run, const char* title) {
  std::printf("%s\n", title);
  std::printf("day");
  for (const auto& [name, result] : run.results) {
    (void)result;
    std::printf(",%s", name.c_str());
  }
  std::printf("\n");
  const size_t days = run.results.front().second.asset_curve.size();
  for (size_t d = 0; d < days; ++d) {
    std::printf("%zu", d);
    for (const auto& [name, result] : run.results) {
      (void)name;
      std::printf(",%.6f", result.asset_curve[d]);
    }
    std::printf("\n");
  }
}

}  // namespace ams::bench

#endif  // AMS_BENCH_BACKTEST_COMMON_H_
