// Reproduces Table I: Bounded Accuracy (BA, %) of AMS and all baselines on
// both alternative datasets, with paired t-test p-values vs AMS on the
// transaction-amount cross-validation folds.
//
// Usage: table1_ba [--seed=42] [--trials=N] [--profile=txn|map|both]
//
// Telemetry: AMS_TELEMETRY=text|json prints a metrics report on stderr at
// exit (per-fold/per-trial timings, epoch counts, GBDT split counters);
// AMS_TRACE_FILE=path writes a Chrome trace-event timeline.
#include <cstdio>

#include "bench/bench_util.h"
#include "obs/report.h"

using namespace ams;

namespace {

void RunProfile(data::DatasetProfile profile, int argc, char** argv) {
  models::ExperimentConfig config =
      bench::ParseExperimentFlags(argc, argv, profile);
  auto result = models::RunExperimentCached(config);
  result.status().Abort("experiment");
  const models::ExperimentResult& experiment = result.ValueOrDie();

  const models::ModelOutcome* ams_outcome = experiment.Find("AMS");
  const bool per_fold_columns = experiment.cv_folds.size() <= 2;

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"Model", "BA"};
  if (!per_fold_columns) {
    header.push_back("P-value");
  } else {
    for (const auto& fold : experiment.cv_folds) {
      header.push_back(
          "BA(" + experiment.panel.QuarterAt(fold.test_quarter).ToString() +
          ")");
    }
  }
  rows.push_back(header);
  for (const models::ModelOutcome& model : experiment.models) {
    std::vector<std::string> row = {model.name,
                                    FormatDouble(model.MeanBa(), 3)};
    if (!per_fold_columns) {
      if (model.name == "AMS" || ams_outcome == nullptr) {
        row.push_back("-");
      } else {
        auto ttest = la::PairedTTest(ams_outcome->FoldBas(), model.FoldBas());
        row.push_back(ttest.ok()
                          ? bench::FormatPValue(ttest.ValueOrDie().p_value)
                          : "n/a");
      }
    } else {
      for (const auto& fold : model.folds) {
        row.push_back(FormatDouble(fold.eval.ba, 3));
      }
    }
    rows.push_back(row);
  }
  std::printf("Table I — BA (Bounded Accuracy, %%) on the %s dataset\n%s\n",
              data::DatasetProfileName(profile), RenderTable(rows).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  obs::InstallExitReporter();
  const std::string profile = GetFlag(argc, argv, "profile", "both");
  if (profile == "txn" || profile == "both") {
    RunProfile(data::DatasetProfile::kTransactionAmount, argc, argv);
  }
  if (profile == "map" || profile == "both") {
    RunProfile(data::DatasetProfile::kMapQuery, argc, argv);
  }
  return 0;
}
