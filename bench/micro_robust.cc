// Microbenchmarks of the robustness layer's hot-path costs: the per-epoch
// gradient guard (the only robust:: code inside training loops — target
// overhead < 2% of an epoch), rollback snapshots, CRC32 throughput, atomic
// file writes, fault-spec parsing and checkpoint (de)serialization.
// `BENCH_robust.json` in the repo root is the committed baseline.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "optim/optimizer.h"
#include "robust/atomic_io.h"
#include "robust/checkpoint.h"
#include "robust/faults.h"
#include "robust/guard.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using namespace ams;

/// Parameter set sized like the AMS master network's (a few dense layers).
std::vector<tensor::Tensor> MakeParams(Rng* rng) {
  std::vector<tensor::Tensor> params;
  const int shapes[][2] = {{64, 48}, {1, 48}, {48, 32}, {1, 32}, {33, 1}};
  for (const auto& shape : shapes) {
    la::Matrix m(shape[0], shape[1]);
    for (int r = 0; r < m.rows(); ++r) {
      for (int c = 0; c < m.cols(); ++c) m(r, c) = rng->Normal() * 0.1;
    }
    params.push_back(tensor::Tensor::Parameter(std::move(m)));
  }
  return params;
}

void FillGrads(const std::vector<tensor::Tensor>& params) {
  for (tensor::Tensor p : params) {  // copies share the underlying node
    p.ZeroGrad();
    p.node()->AccumulateGrad(la::Matrix::Zeros(p.rows(), p.cols()));
  }
}

/// The guard's steady-state cost under the default abort policy: one
/// AllFinite scan of every gradient per epoch.
void BM_GuardStepFiniteScan(benchmark::State& state) {
  Rng rng(7);
  std::vector<tensor::Tensor> params = MakeParams(&rng);
  optim::Adam optimizer(params, 1e-3);
  robust::GuardOptions options;  // abort policy: no snapshots
  robust::TrainGuard guard(options, &optimizer, nullptr);
  FillGrads(params);
  int64_t epoch = 0;
  for (auto _ : state) {
    guard.BeginEpoch(epoch);
    benchmark::DoNotOptimize(guard.GuardStep(epoch, /*loss_finite=*/true));
    ++epoch;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardStepFiniteScan);

/// Rollback adds a full parameter + optimizer-state snapshot per epoch.
void BM_GuardRollbackSnapshot(benchmark::State& state) {
  Rng rng(7);
  std::vector<tensor::Tensor> params = MakeParams(&rng);
  optim::Adam optimizer(params, 1e-3);
  robust::GuardOptions options;
  options.policy = robust::GuardPolicy::kRollback;
  Rng dropout_rng(11);
  robust::TrainGuard guard(options, &optimizer, &dropout_rng);
  FillGrads(params);
  int64_t epoch = 0;
  for (auto _ : state) {
    guard.BeginEpoch(epoch);
    benchmark::DoNotOptimize(guard.GuardStep(epoch, /*loss_finite=*/true));
    ++epoch;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardRollbackSnapshot);

void BM_Crc32(benchmark::State& state) {
  const std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust::Crc32(payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_AtomicWriteFile(benchmark::State& state) {
  const std::string payload(static_cast<size_t>(state.range(0)), 'x');
  const std::string path = "/tmp/ams_bench_atomic_write.dat";
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust::AtomicWriteFile(path, payload));
  }
  std::remove(path.c_str());
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AtomicWriteFile)->Arg(1 << 16);

void BM_ParseFaultSpec(benchmark::State& state) {
  const std::string spec =
      "nan_grad@epoch=3;task_throw@index=7;io_truncate@write=2";
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust::ParseFaultSpec(spec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseFaultSpec);

/// The disarmed-injector query that sits inside every guarded epoch and
/// atomic write: must be a relaxed atomic load and nothing more.
void BM_InjectorDisarmedQuery(benchmark::State& state) {
  robust::FaultInjector::Get().Disarm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        robust::FaultInjector::Get().ShouldCorruptGradient(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InjectorDisarmedQuery);

robust::Checkpoint MakeCheckpoint() {
  Rng rng(7);
  robust::Checkpoint ckpt;
  ckpt.strings["fingerprint"] = "bench|fingerprint";
  ckpt.scalars["next_epoch"] = 25;
  int index = 0;
  for (const auto& p : MakeParams(&rng)) {
    ckpt.tensors["param/" + std::to_string(index++)] = p.value();
  }
  ckpt.PutRngState("rng", rng.SaveState());
  return ckpt;
}

void BM_CheckpointSerialize(benchmark::State& state) {
  const robust::Checkpoint ckpt = MakeCheckpoint();
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string blob = robust::SerializeCheckpoint(ckpt);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_CheckpointSerialize);

void BM_CheckpointDeserialize(benchmark::State& state) {
  const std::string blob = robust::SerializeCheckpoint(MakeCheckpoint());
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust::DeserializeCheckpoint(blob));
  }
  state.SetBytesProcessed(state.iterations() * blob.size());
}
BENCHMARK(BM_CheckpointDeserialize);

void BM_CheckpointSaveLoadDisk(benchmark::State& state) {
  const robust::Checkpoint ckpt = MakeCheckpoint();
  const std::string path = "/tmp/ams_bench_ckpt.bin";
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust::SaveCheckpoint(path, ckpt));
    benchmark::DoNotOptimize(robust::LoadCheckpoint(path));
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointSaveLoadDisk);

}  // namespace

BENCHMARK_MAIN();
