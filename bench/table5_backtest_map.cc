// Reproduces Table V: long/short backtest on the map-query dataset over the
// test quarters (paper: 2018q1-2018q2).
//
// Usage: table5_backtest_map [--seed=42] [--trials=N]
#include "bench/backtest_common.h"
#include "obs/report.h"

int main(int argc, char** argv) {
  ams::obs::InstallExitReporter();
  auto run = ams::bench::RunBacktests(ams::data::DatasetProfile::kMapQuery,
                                      argc, argv);
  ams::bench::PrintBacktestTable(
      run,
      "Table V — backtest 2018q1-2018q2, map query dataset\n"
      "(Sharpe/AER are measured against AMS; negative means no excess return"
      " over AMS)");
  return 0;
}
