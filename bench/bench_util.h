// Shared helpers for the table/figure benches.
#ifndef AMS_BENCH_BENCH_UTIL_H_
#define AMS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "la/stats.h"
#include "models/experiment.h"
#include "util/string_util.h"

namespace ams::bench {

/// Parses the common bench flags into an ExperimentConfig.
inline models::ExperimentConfig ParseExperimentFlags(
    int argc, char** argv, data::DatasetProfile profile) {
  models::ExperimentConfig config;
  config.profile = profile;
  config.seed = GetFlagU64(argc, argv, "seed", 42);
  config.hpo_trials = GetFlagInt(argc, argv, "trials", 4);
  config.verbose = GetFlag(argc, argv, "verbose", "") == "1";
  return config;
}

/// Two-sided paired t-test p-value between a model's per-fold metric values
/// and a reference model's; "<1e-4" formatting like the paper's tables.
inline std::string FormatPValue(double p) {
  if (p < 1e-4) return "<1e-4";
  return FormatDouble(p, 4);
}

}  // namespace ams::bench

#endif  // AMS_BENCH_BENCH_UTIL_H_
