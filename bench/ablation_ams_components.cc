// Component ablation of the AMS design choices called out in DESIGN.md:
//   full        — the complete model;
//   no-slg      — supervised LR generation disabled (lambda_slg = 0);
//   no-assembly — model assembly disabled (gamma = 1);
//   no-gat      — master without any GNN (node transform -> generator);
//   gcn-master  — GAT replaced by a plain GCN (mean aggregation);
//   anchor-only — the anchored LR by itself (gamma = 0 equivalent is the
//                 learned beta_c; this row is the pure Eq. 5 ridge).
// Reported as mean BA / SR over the transaction-amount CV folds.
//
// Usage: ablation_ams_components [--seed=42]
#include <cstdio>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "data/cv.h"
#include "data/generator.h"
#include "models/ams_regressor.h"
#include "models/baselines.h"

using namespace ams;

namespace {

struct Variant {
  std::string name;
  core::AmsConfig config;
  bool anchor_only = false;
};

}  // namespace

int main(int argc, char** argv) {
  obs::InstallExitReporter();
  const uint64_t seed = GetFlagU64(argc, argv, "seed", 42);
  auto panel_result = data::GenerateMarket(data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, seed));
  panel_result.status().Abort("generate");
  const data::Panel& panel = panel_result.ValueOrDie();
  auto folds_result = data::TimeSeriesCvFolds(
      panel.num_quarters, data::DefaultCvOptions(panel.profile));
  folds_result.status().Abort("folds");
  const auto& folds = folds_result.ValueOrDie();

  std::vector<Variant> variants;
  variants.push_back({"full", core::AmsConfig{}, false});
  {
    core::AmsConfig config;
    config.lambda_slg = 0.0;
    variants.push_back({"no-slg", config, false});
  }
  {
    core::AmsConfig config;
    config.gamma = 1.0;
    variants.push_back({"no-assembly", config, false});
  }
  {
    core::AmsConfig config;
    config.use_gat = false;
    variants.push_back({"no-gat", config, false});
  }
  {
    core::AmsConfig config;
    config.gnn_kind = core::AmsConfig::GnnKind::kGcn;
    variants.push_back({"gcn-master", config, false});
  }
  variants.push_back({"anchor-only", core::AmsConfig{}, true});

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Variant", "BA(%)", "SR"});
  for (const Variant& variant : variants) {
    double ba_sum = 0.0;
    double sr_sum = 0.0;
    for (const auto& fold : folds) {
      data::FeatureBuilder builder(&panel, data::FeatureOptions{});
      auto train = builder.Build(fold.train_quarters).MoveValue();
      auto valid = builder.Build({fold.valid_quarter}).MoveValue();
      auto test = builder.Build({fold.test_quarter}).MoveValue();
      const data::Standardizer standardizer = data::Standardizer::Fit(train);
      standardizer.Apply(&train);
      standardizer.Apply(&valid);
      standardizer.Apply(&test);

      models::FitContext context;
      context.train = &train;
      context.valid = &valid;
      context.panel = &panel;
      context.last_train_quarter = fold.valid_quarter - 1;
      context.seed = seed;

      std::vector<double> pred;
      if (variant.anchor_only) {
        linear::LinearOptions options;
        options.alpha = variant.config.anchored_alpha;
        options.l1_ratio = 0.0;
        models::LinearRegressor anchor("anchor", options);
        anchor.Fit(context).Abort("anchor fit");
        pred = anchor.PredictNorm(test).MoveValue();
      } else {
        models::AmsRegressor model(variant.config, /*graph_top_k=*/5,
                                   /*ensemble_size=*/2);
        model.Fit(context).Abort("ablation fit");
        pred = model.PredictNorm(test).MoveValue();
      }
      auto eval = metrics::Evaluate(test, pred);
      eval.status().Abort("evaluate");
      ba_sum += eval.ValueOrDie().ba;
      sr_sum += eval.ValueOrDie().sr;
    }
    rows.push_back({variant.name,
                    FormatDouble(ba_sum / folds.size(), 3),
                    FormatDouble(sr_sum / folds.size(), 4)});
  }
  std::printf(
      "AMS component ablation — transaction amount dataset, %zu CV folds\n%s\n",
      folds.size(), RenderTable(rows).c_str());
  return 0;
}
