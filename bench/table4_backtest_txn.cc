// Reproduces Table IV: long/short backtest on the transaction-amount
// dataset over the test quarters (paper: 2016q4-2018q2) — Earning, Max
// Drawdown, Sharpe Ratio vs AMS and Average Excess Return vs AMS.
//
// Usage: table4_backtest_txn [--seed=42] [--trials=N]
#include "bench/backtest_common.h"
#include "obs/report.h"

int main(int argc, char** argv) {
  ams::obs::InstallExitReporter();
  auto run = ams::bench::RunBacktests(
      ams::data::DatasetProfile::kTransactionAmount, argc, argv);
  ams::bench::PrintBacktestTable(
      run,
      "Table IV — backtest 2016q4-2018q2, transaction amount dataset\n"
      "(Sharpe/AER are measured against AMS; negative means no excess return"
      " over AMS)");
  return 0;
}
