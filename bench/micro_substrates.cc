// Google-Benchmark microbenchmarks of the substrates: dense matmul, one
// autograd training step, a GAT forward/backward, GBDT fitting, correlation-
// graph construction, ARIMA order search and market generation.
#include <benchmark/benchmark.h>

#include "data/generator.h"
#include "gbdt/gbdt.h"
#include "gnn/gat.h"
#include "graph/company_graph.h"
#include "la/matrix.h"
#include "nn/dense.h"
#include "optim/optimizer.h"
#include "tensor/tensor.h"
#include "ts/arima.h"
#include "util/rng.h"

namespace {

using namespace ams;

la::Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  la::Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal();
  }
  return m;
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  la::Matrix a = RandomMatrix(n, n, &rng);
  la::Matrix b = RandomMatrix(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_AutogradStep(benchmark::State& state) {
  const int batch = 512;
  const int features = 48;
  Rng rng(2);
  nn::Mlp mlp(features, {64, 32}, 1, nn::Activation::kRelu, &rng);
  tensor::Tensor x = tensor::Tensor::Constant(RandomMatrix(batch, features, &rng));
  tensor::Tensor y = tensor::Tensor::Constant(RandomMatrix(batch, 1, &rng));
  optim::Adam adam(mlp.Parameters(), 1e-3);
  for (auto _ : state) {
    adam.ZeroGrad();
    tensor::Tensor loss = tensor::MseLoss(mlp.Forward(x), y);
    tensor::Backward(loss);
    adam.Step();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_AutogradStep);

void BM_GatForwardBackward(benchmark::State& state) {
  const int nodes = 71;
  const int features = 48;
  Rng rng(3);
  gnn::GatConfig config;
  gnn::GatNetwork gat(features, config, &rng);
  tensor::Tensor x = tensor::Tensor::Constant(RandomMatrix(nodes, features, &rng));
  la::Matrix mask(nodes, nodes, 0.0);
  for (int i = 0; i < nodes; ++i) {
    mask(i, i) = 1.0;
    for (int k = 1; k <= 5; ++k) mask(i, (i + k) % nodes) = 1.0;
  }
  for (auto _ : state) {
    tensor::Tensor out = gat.Forward(x, mask);
    tensor::Tensor loss = tensor::Mean(tensor::SumSquares(out));
    tensor::Backward(loss);
    for (auto& p : gat.Parameters()) p.ZeroGrad();
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_GatForwardBackward);

void BM_GbdtFit(benchmark::State& state) {
  const int n = 512;
  const int p = 48;
  Rng rng(4);
  la::Matrix x = RandomMatrix(n, p, &rng);
  la::Matrix y(n, 1);
  for (int r = 0; r < n; ++r) y(r, 0) = x(r, 0) * 0.5 + rng.Normal() * 0.1;
  gbdt::GbdtOptions options;
  options.num_rounds = 50;
  for (auto _ : state) {
    gbdt::GbdtRegressor booster(options);
    benchmark::DoNotOptimize(booster.Fit(x, y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GbdtFit);

void BM_CorrelationGraph(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<double>> histories(71);
  for (auto& h : histories) {
    h.resize(16);
    for (double& v : h) v = 100.0 + rng.Normal() * 10.0;
  }
  graph::CorrelationGraphOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::CompanyGraph::BuildFromRevenue(histories, options));
  }
}
BENCHMARK(BM_CorrelationGraph);

void BM_ArimaFitAuto(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> series(15);
  double level = 100.0;
  for (double& v : series) {
    level *= 1.0 + rng.Normal(0.02, 0.05);
    v = level;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::ArimaModel::FitAuto(series));
  }
}
BENCHMARK(BM_ArimaFitAuto);

void BM_GenerateMarket(benchmark::State& state) {
  auto config = data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::GenerateMarket(config));
  }
}
BENCHMARK(BM_GenerateMarket);

}  // namespace

BENCHMARK_MAIN();
