// Google-Benchmark microbenchmarks of the substrates: dense matmul, one
// autograd training step, a GAT forward/backward, GBDT fitting, correlation-
// graph construction, ARIMA order search, market generation, and the shared
// thread-pool layer (pool dispatch overhead, blocked parallel GEMM, parallel
// random-search HPO).
//
// The */threads:N cases resize the default pool around the workload; run
//   micro_substrates --benchmark_filter='Pool|Parallel|MatMul'
//     --benchmark_format=json
// to regenerate BENCH_par.json, the perf baseline later PRs diff against.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "data/features.h"
#include "data/generator.h"
#include "gbdt/gbdt.h"
#include "gnn/gat.h"
#include "graph/company_graph.h"
#include "la/gemm_kernels.h"
#include "la/matrix.h"
#include "la/pool.h"
#include "models/hpo.h"
#include "models/zoo.h"
#include "nn/dense.h"
#include "optim/optimizer.h"
#include "par/thread_pool.h"
#include "tensor/fusion.h"
#include "tensor/tensor.h"
#include "ts/arima.h"
#include "util/rng.h"

namespace {

using namespace ams;

la::Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  la::Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) m(r, c) = rng->Normal();
  }
  return m;
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  la::Matrix a = RandomMatrix(n, n, &rng);
  la::Matrix b = RandomMatrix(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

// Raw GEMM microkernels, scalar vs AVX2, bypassing ParallelFor dispatch so
// the two arms isolate the SIMD speedup on any host. simd:1 is skipped
// (with error) where AVX2 is unavailable.
void BM_MatMulSimd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool use_avx2 = state.range(1) != 0;
  const la::internal::GemmKernels* kernels =
      use_avx2 ? la::internal::Avx2GemmKernels()
               : &la::internal::ScalarGemmKernels();
  if (use_avx2 && (kernels == nullptr || !la::internal::CpuSupportsAvx2())) {
    state.SkipWithError("AVX2 unavailable on this build/host");
    return;
  }
  Rng rng(1);
  la::Matrix a = RandomMatrix(n, n, &rng);
  la::Matrix b = RandomMatrix(n, n, &rng);
  la::Matrix c(n, n);
  for (auto _ : state) {
    std::fill_n(c.data(), static_cast<size_t>(n) * n, 0.0);
    kernels->matmul_rows(a.data(), b.data(), c.data(), 0, n, n, n);
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMulSimd)
    ->ArgNames({"n", "simd"})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1});

// The pooled arena against the system allocator on a tape-like size mix
// (a few small nodes and buffers up to a mid-sized activation).
void BM_PoolAllocVsMalloc(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  constexpr size_t kSizes[] = {256, 2048, 8192, 24576, 73728};
  constexpr int kLive = 8;
  la::BufferPool& pool = la::BufferPool::Global();
  for (auto _ : state) {
    // No DoNotOptimize on ptrs[i]: Allocate / operator new are opaque calls
    // the compiler cannot elide, and GCC's "+m,r" asm constraint can spill
    // an indexed element to a temp, dead-storing the real array slot.
    void* ptrs[kLive];
    for (int i = 0; i < kLive; ++i) {
      const size_t bytes = kSizes[i % 5];
      ptrs[i] = pooled ? pool.Allocate(bytes) : ::operator new(bytes);
    }
    benchmark::ClobberMemory();
    for (int i = 0; i < kLive; ++i) {
      if (pooled) {
        la::BufferPool::Free(ptrs[i]);
      } else {
        ::operator delete(ptrs[i]);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kLive);
}
BENCHMARK(BM_PoolAllocVsMalloc)->ArgName("pooled")->Arg(0)->Arg(1);

// A bias+sigmoid+gate+scale block, op-per-op vs one fused tape node,
// forward and backward (the shape dense/LSTM layers record per step).
void BM_FusedSigmoidChain(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  const int n = 256;
  Rng rng(9);
  tensor::Tensor x = tensor::Tensor::Parameter(RandomMatrix(n, n, &rng));
  tensor::Tensor bias = tensor::Tensor::Parameter(RandomMatrix(1, n, &rng));
  tensor::Tensor gate = tensor::Tensor::Parameter(RandomMatrix(n, n, &rng));
  for (auto _ : state) {
    tensor::Tensor out;
    if (fused) {
      out = tensor::ElementwiseChain()
                .Add(bias)
                .Sigmoid()
                .Mul(gate)
                .Scale(0.5)
                .Apply(x);
    } else {
      out = tensor::Scale(
          tensor::Mul(tensor::Sigmoid(tensor::Add(x, bias)), gate), 0.5);
    }
    tensor::Backward(tensor::Sum(out));
    x.ZeroGrad();
    bias.ZeroGrad();
    gate.ZeroGrad();
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * 4);
}
BENCHMARK(BM_FusedSigmoidChain)->ArgName("fused")->Arg(0)->Arg(1);

void BM_AutogradStep(benchmark::State& state) {
  const int batch = 512;
  const int features = 48;
  Rng rng(2);
  nn::Mlp mlp(features, {64, 32}, 1, nn::Activation::kRelu, &rng);
  tensor::Tensor x = tensor::Tensor::Constant(RandomMatrix(batch, features, &rng));
  tensor::Tensor y = tensor::Tensor::Constant(RandomMatrix(batch, 1, &rng));
  optim::Adam adam(mlp.Parameters(), 1e-3);
  for (auto _ : state) {
    adam.ZeroGrad();
    tensor::Tensor loss = tensor::MseLoss(mlp.Forward(x), y);
    tensor::Backward(loss);
    adam.Step();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_AutogradStep);

void BM_GatForwardBackward(benchmark::State& state) {
  const int nodes = 71;
  const int features = 48;
  Rng rng(3);
  gnn::GatConfig config;
  gnn::GatNetwork gat(features, config, &rng);
  tensor::Tensor x = tensor::Tensor::Constant(RandomMatrix(nodes, features, &rng));
  la::Matrix mask(nodes, nodes, 0.0);
  for (int i = 0; i < nodes; ++i) {
    mask(i, i) = 1.0;
    for (int k = 1; k <= 5; ++k) mask(i, (i + k) % nodes) = 1.0;
  }
  for (auto _ : state) {
    tensor::Tensor out = gat.Forward(x, mask);
    tensor::Tensor loss = tensor::Mean(tensor::SumSquares(out));
    tensor::Backward(loss);
    for (auto& p : gat.Parameters()) p.ZeroGrad();
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_GatForwardBackward);

void BM_GbdtFit(benchmark::State& state) {
  const int n = 512;
  const int p = 48;
  Rng rng(4);
  la::Matrix x = RandomMatrix(n, p, &rng);
  la::Matrix y(n, 1);
  for (int r = 0; r < n; ++r) y(r, 0) = x(r, 0) * 0.5 + rng.Normal() * 0.1;
  gbdt::GbdtOptions options;
  options.num_rounds = 50;
  for (auto _ : state) {
    gbdt::GbdtRegressor booster(options);
    benchmark::DoNotOptimize(booster.Fit(x, y));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GbdtFit);

void BM_CorrelationGraph(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<double>> histories(71);
  for (auto& h : histories) {
    h.resize(16);
    for (double& v : h) v = 100.0 + rng.Normal() * 10.0;
  }
  graph::CorrelationGraphOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::CompanyGraph::BuildFromRevenue(histories, options));
  }
}
BENCHMARK(BM_CorrelationGraph);

void BM_ArimaFitAuto(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> series(15);
  double level = 100.0;
  for (double& v : series) {
    level *= 1.0 + rng.Normal(0.02, 0.05);
    v = level;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ts::ArimaModel::FitAuto(series));
  }
}
BENCHMARK(BM_ArimaFitAuto);

void BM_GenerateMarket(benchmark::State& state) {
  auto config = data::GeneratorConfig::Defaults(
      data::DatasetProfile::kTransactionAmount, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::GenerateMarket(config));
  }
}
BENCHMARK(BM_GenerateMarket);

// ---------------------------------------------------------------------------
// Thread-pool layer. Arg(0) is the pool parallelism so a single JSON run
// contains the serial baseline next to the parallel case.

void BM_PoolParallelFor(benchmark::State& state) {
  par::SetDefaultParallelism(static_cast<int>(state.range(0)));
  constexpr int64_t kIterations = 1 << 14;
  std::atomic<int64_t> sink{0};
  for (auto _ : state) {
    par::ParallelFor(kIterations, /*grain=*/256,
                     [&](int64_t begin, int64_t end) {
                       int64_t acc = 0;
                       for (int64_t i = begin; i < end; ++i) acc += i;
                       sink.fetch_add(acc, std::memory_order_relaxed);
                     });
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * kIterations);
  par::SetDefaultParallelism(0);
}
BENCHMARK(BM_PoolParallelFor)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_PoolSubmitDrain(benchmark::State& state) {
  par::SetDefaultParallelism(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::future<int>> futures;
    futures.reserve(128);
    for (int i = 0; i < 128; ++i) {
      futures.push_back(par::DefaultPool().Submit([i] { return i; }));
    }
    int total = 0;
    for (auto& f : futures) total += f.get();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 128);
  par::SetDefaultParallelism(0);
}
BENCHMARK(BM_PoolSubmitDrain)->ArgName("threads")->Arg(2)->Arg(4);

void BM_MatMulParallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  par::SetDefaultParallelism(static_cast<int>(state.range(1)));
  Rng rng(1);
  la::Matrix a = RandomMatrix(n, n, &rng);
  la::Matrix b = RandomMatrix(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
  par::SetDefaultParallelism(0);
}
BENCHMARK(BM_MatMulParallel)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4});

void BM_ParallelHpo(benchmark::State& state) {
  par::SetDefaultParallelism(static_cast<int>(state.range(0)));
  // One fold's worth of real pipeline data, built once per benchmark.
  static const auto* setup = [] {
    struct Setup {
      data::Panel panel;
      data::Dataset train, valid;
      models::FitContext context;
      models::ModelSpec spec;
    };
    auto config = data::GeneratorConfig::Defaults(
        data::DatasetProfile::kTransactionAmount, 42);
    config.num_companies = 20;
    config.num_sectors = 4;
    auto* s = new Setup();
    s->panel = data::GenerateMarket(config).MoveValue();
    data::FeatureBuilder builder(&s->panel, data::FeatureOptions{});
    s->train = builder.Build({4, 5, 6, 7}).MoveValue();
    s->valid = builder.Build({8}).MoveValue();
    const data::Standardizer standardizer = data::Standardizer::Fit(s->train);
    standardizer.Apply(&s->train);
    standardizer.Apply(&s->valid);
    s->context.train = &s->train;
    s->context.valid = &s->valid;
    s->context.panel = &s->panel;
    s->context.last_train_quarter = 7;
    for (models::ModelSpec& spec :
         models::BuildModelZoo(s->panel.num_alt_channels)) {
      if (spec.name == "XGBoost") s->spec = std::move(spec);
    }
    return s;
  }();
  models::HpoOptions options;
  options.trials = 8;
  options.seed = 7;
  for (auto _ : state) {
    auto outcome = models::RandomSearch(setup->spec, setup->context, options);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations() * options.trials);
  par::SetDefaultParallelism(0);
}
BENCHMARK(BM_ParallelHpo)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

}  // namespace

// Custom main so every JSON report carries the host's core count in its
// context block. tools/bench_diff reads context.num_cpus (the native
// google-benchmark field) and refuses to compare thread-scaling metrics
// across hosts with different core counts; ams_simd records which GEMM
// kernels the run dispatched to.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext(
      "ams_hardware_concurrency",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext("ams_simd",
                              ams::la::internal::ActiveGemmKernels().name);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
