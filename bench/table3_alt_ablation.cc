// Reproduces Table III: effectiveness of the alternative data. Every learned
// model is retrained with the alternative features removed (the "-na"
// variants) on the *same* panel, and the table reports
//   SR-m = SR(without alt) - SR(with alt)
//   BA-m = BA(without alt) - BA(with alt)
// Larger SR-m / more negative BA-m => the alternative data helps more.
//
// Usage: table3_alt_ablation [--seed=42] [--trials=N] [--profile=txn|map|both]
#include <cstdio>

#include "bench/bench_util.h"
#include "obs/report.h"

using namespace ams;

namespace {

void RunProfile(data::DatasetProfile profile, int argc, char** argv) {
  models::ExperimentConfig config =
      bench::ParseExperimentFlags(argc, argv, profile);
  config.model_filter = models::LearnedModelNames();

  config.include_alt = true;
  auto with_alt = models::RunExperimentCached(config);
  with_alt.status().Abort("with-alt run");
  config.include_alt = false;
  auto without_alt = models::RunExperimentCached(config);
  without_alt.status().Abort("no-alt run");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Model", "SR-m", "BA-m(%)"});
  for (const models::ModelOutcome& na : without_alt.ValueOrDie().models) {
    const models::ModelOutcome* base =
        with_alt.ValueOrDie().Find(na.name);
    if (base == nullptr) continue;
    rows.push_back({na.name + "-na",
                    FormatDouble(na.MeanSr() - base->MeanSr(), 4),
                    FormatDouble(na.MeanBa() - base->MeanBa(), 3)});
  }
  std::printf(
      "Table III — feature effectiveness on the %s dataset\n"
      "(-na = retrained without alternative data; SR-m > 0 and BA-m < 0 mean"
      " the\n alternative data was helping)\n%s\n",
      data::DatasetProfileName(profile), RenderTable(rows).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  obs::InstallExitReporter();
  const std::string profile = GetFlag(argc, argv, "profile", "both");
  if (profile == "txn" || profile == "both") {
    RunProfile(data::DatasetProfile::kTransactionAmount, argc, argv);
  }
  if (profile == "map" || profile == "both") {
    RunProfile(data::DatasetProfile::kMapQuery, argc, argv);
  }
  return 0;
}
