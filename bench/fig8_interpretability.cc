// Reproduces Fig. 8: interpretability of AMS. Trains AMS on the last
// cross-validation fold of each dataset, extracts the per-company slave-LR
// weights on the test quarter for three randomly selected companies, and
// prints the alternative-data feature weights min-max scaled to [0, 1]
// across the selected companies (the paper's visualization).
//
// Usage: fig8_interpretability [--seed=42]
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "data/cv.h"
#include "data/generator.h"
#include "models/ams_regressor.h"
#include "util/rng.h"

using namespace ams;

namespace {

void RunProfile(data::DatasetProfile profile, uint64_t seed) {
  auto panel_result =
      data::GenerateMarket(data::GeneratorConfig::Defaults(profile, seed));
  panel_result.status().Abort("generate");
  const data::Panel& panel = panel_result.ValueOrDie();

  auto folds_result = data::TimeSeriesCvFolds(
      panel.num_quarters, data::DefaultCvOptions(profile));
  folds_result.status().Abort("folds");
  const data::CvFold fold = folds_result.ValueOrDie().back();

  data::FeatureBuilder builder(&panel, data::FeatureOptions{});
  auto train = builder.Build(fold.train_quarters).MoveValue();
  auto valid = builder.Build({fold.valid_quarter}).MoveValue();
  auto test = builder.Build({fold.test_quarter}).MoveValue();
  const data::Standardizer standardizer = data::Standardizer::Fit(train);
  standardizer.Apply(&train);
  standardizer.Apply(&valid);
  standardizer.Apply(&test);

  models::FitContext context;
  context.train = &train;
  context.valid = &valid;
  context.panel = &panel;
  context.last_train_quarter = fold.valid_quarter - 1;
  context.seed = seed;

  models::AmsRegressor ams_model(core::AmsConfig{}, /*graph_top_k=*/5);
  ams_model.Fit(context).Abort("fit AMS");
  auto coeffs_result = ams_model.SlaveCoefficients(test);
  coeffs_result.status().Abort("slave coefficients");
  const la::Matrix& coeffs = coeffs_result.ValueOrDie();

  // Three randomly selected companies (paper: "We randomly selected three
  // companies (C) on each dataset").
  Rng rng(seed ^ 0xF16F8ULL);
  std::vector<int> picks =
      rng.SampleWithoutReplacement(panel.num_companies(), 3);
  std::sort(picks.begin(), picks.end());

  // Columns to display: the alternative-data features (current + lagged),
  // matching the paper's Fig. 8 which shows alt features with suffix dqk.
  std::vector<int> columns;
  for (int c = 0; c < static_cast<int>(test.feature_names.size()); ++c) {
    if (test.feature_names[c].rfind("alt", 0) == 0) columns.push_back(c);
  }

  std::printf(
      "Fig. 8 — per-company slave-LR weights, %s dataset, test quarter %s\n"
      "(weights min-max scaled to [0,1] per feature across the selected"
      " companies;\n distinct values within a row demonstrate per-company"
      " adaptivity)\n",
      data::DatasetProfileName(profile),
      panel.QuarterAt(fold.test_quarter).ToString().c_str());

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"feature"};
  for (int company : picks) {
    header.push_back(panel.companies[company].name);
  }
  header.push_back("raw range");
  rows.push_back(header);
  for (int c : columns) {
    std::vector<double> values;
    for (int company : picks) {
      // Row index: test has exactly one row per company ordered by index.
      values.push_back(coeffs(company, c));
    }
    const double lo = *std::min_element(values.begin(), values.end());
    const double hi = *std::max_element(values.begin(), values.end());
    std::vector<std::string> row = {test.feature_names[c]};
    for (double v : values) {
      row.push_back(hi > lo ? FormatDouble((v - lo) / (hi - lo), 3)
                            : "0.500");
    }
    row.push_back("[" + FormatDouble(lo, 4) + ", " + FormatDouble(hi, 4) +
                  "]");
    rows.push_back(row);
  }
  std::printf("%s\n", RenderTable(rows).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  obs::InstallExitReporter();
  const uint64_t seed = GetFlagU64(argc, argv, "seed", 42);
  RunProfile(data::DatasetProfile::kTransactionAmount, seed);
  RunProfile(data::DatasetProfile::kMapQuery, seed);
  return 0;
}
