// Microbenchmarks of the telemetry layer's hot-path costs: counter
// increments, gauge sets, histogram observes, span enter/exit with the
// trace buffer on and off, trace-context capture/handoff, span enter/exit
// with the sampling profiler live, and SLO evaluation. Later PRs use these
// to prove instrumentation in hot loops stays cheap.
#include <benchmark/benchmark.h>

#include <sstream>

#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/prometheus.h"
#include "obs/trace.h"

namespace {

using namespace ams;

void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter& counter =
      obs::MetricsRegistry::Get().GetCounter("bench/counter");
  for (auto _ : state) {
    counter.Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement)->ThreadRange(1, 8);

void BM_CounterLookupAndIncrement(benchmark::State& state) {
  // The anti-pattern cost: registry lookup on every increment instead of a
  // cached reference.
  for (auto _ : state) {
    obs::MetricsRegistry::Get().GetCounter("bench/counter_lookup").Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterLookupAndIncrement);

void BM_LabeledCounterLookupAndIncrement(benchmark::State& state) {
  // Labeled lookup pays the canonical-name encode + hash probe each call;
  // a cached reference (as in BM_CounterIncrement) pays it once.
  for (auto _ : state) {
    obs::MetricsRegistry::Get()
        .GetCounter("bench/counter_labeled", {{"model", "AMS"}})
        .Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LabeledCounterLookupAndIncrement);

void BM_GaugeSet(benchmark::State& state) {
  obs::Gauge& gauge = obs::MetricsRegistry::Get().GetGauge("bench/gauge");
  double value = 0.0;
  for (auto _ : state) {
    gauge.Set(value);
    value += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& histogram =
      obs::MetricsRegistry::Get().GetHistogram("bench/hist");
  double value = 0.0;
  for (auto _ : state) {
    histogram.Observe(value);
    value = value < 1000.0 ? value + 0.1 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve)->ThreadRange(1, 8);

void BM_HistogramPercentile(benchmark::State& state) {
  // Report-time cost, not hot-path: interpolating p50/p95/p99 from a
  // populated default-bounds histogram snapshot.
  obs::Histogram& histogram =
      obs::MetricsRegistry::Get().GetHistogram("bench/hist_pct");
  for (int i = 0; i < 4096; ++i) {
    histogram.Observe(0.01 * static_cast<double>(i));
  }
  ams::obs::MetricsSnapshot::HistogramValue view;
  view.count = histogram.count();
  view.sum = histogram.sum();
  view.bucket_bounds = histogram.bucket_bounds();
  view.bucket_counts = histogram.bucket_counts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.Percentile(0.50));
    benchmark::DoNotOptimize(view.Percentile(0.95));
    benchmark::DoNotOptimize(view.Percentile(0.99));
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_HistogramPercentile);

void BM_SpanEnterExit(benchmark::State& state) {
  obs::TraceBuffer::Get().SetEnabled(false);
  for (auto _ : state) {
    AMS_TRACE_SPAN("bench/span");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnterExit);

void BM_SpanEnterExitBufferEnabled(benchmark::State& state) {
  obs::TraceBuffer::Get().SetEnabled(true);
  for (auto _ : state) {
    AMS_TRACE_SPAN("bench/span_buffered");
  }
  obs::TraceBuffer::Get().SetEnabled(false);
  obs::TraceBuffer::Get().Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnterExitBufferEnabled);

void BM_CurrentTraceContext(benchmark::State& state) {
  // The per-request capture cost serve pays on every Admit.
  AMS_TRACE_SPAN("bench/ctx_root");
  for (auto _ : state) {
    obs::TraceContext ctx = obs::CurrentTraceContext();
    benchmark::DoNotOptimize(ctx);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CurrentTraceContext);

void BM_TraceContextScope(benchmark::State& state) {
  // The per-task install cost the thread pool pays on every Enqueue'd task.
  AMS_TRACE_SPAN("bench/ctx_root");
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  for (auto _ : state) {
    obs::TraceContextScope scope(ctx);
    benchmark::DoNotOptimize(&scope);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceContextScope);

void BM_SpanEnterExitUnderProfiler(benchmark::State& state) {
  // Steady-state profiler overhead on instrumented code: the sampler wakes
  // at the default 97 Hz while this thread opens and closes spans. Compare
  // against BM_SpanEnterExit to read the overhead directly.
  obs::TraceBuffer::Get().SetEnabled(false);
  std::ostringstream sink;
  obs::WallProfiler::Options options;
  options.hz = 97.0;
  options.out = &sink;
  obs::WallProfiler profiler(options);
  for (auto _ : state) {
    AMS_TRACE_SPAN("bench/span_profiled");
  }
  profiler.Stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnterExitUnderProfiler);

void BM_ProfilerSampleThreadStacks(benchmark::State& state) {
  // One sampler tick: snapshot every registered thread's span stack. This
  // is the sampler thread's per-wakeup cost, not a hot-path cost.
  AMS_TRACE_SPAN("bench/sampled_outer");
  AMS_TRACE_SPAN("bench/sampled_inner");
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::internal::SampleThreadStacks());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerSampleThreadStacks);

void BM_HealthEvaluate(benchmark::State& state) {
  // One reporter-tick SLO evaluation against a populated registry snapshot.
  auto targets = obs::HealthMonitor::ParseSpec(
      "bench/hist:p99<1e9;bench/gauge:<1e9;bench/counter>0");
  obs::HealthMonitor monitor(targets.MoveValue());
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Get().Snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.Evaluate(snapshot));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HealthEvaluate);

void BM_PrometheusRender(benchmark::State& state) {
  // One /metrics scrape body over a populated registry: snapshot + text
  // exposition render. This is the admin plane's per-scrape cost, which
  // must stay off the serving threads' critical path but still cheap
  // enough that a 1 Hz scraper is invisible in the process profile.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  for (int i = 0; i < 64; ++i) {
    registry
        .GetCounter("bench/prom_family",
                    {{"shard", std::to_string(i)}})
        .Increment();
  }
  int64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    obs::WritePrometheusReport(registry.Snapshot(), out);
    bytes += static_cast<int64_t>(out.str().size());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_PrometheusRender);

void BM_FlightRecorderRecord(benchmark::State& state) {
  // The wait-free ring write every span/serve-outcome pays once the flight
  // recorder is enabled — a fetch_add, a few plain stores, one release
  // store. Compare against BM_CounterIncrement for the relative cost.
  obs::FlightRecorder::Get().Enable(1024);
  for (auto _ : state) {
    obs::FlightRecorder::Get().Record(obs::FlightEventKind::kMark,
                                      "bench/flight", 1, 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderRecord)->ThreadRange(1, 8);

}  // namespace

BENCHMARK_MAIN();
