// Microbenchmarks of the telemetry layer's hot-path costs: counter
// increments, gauge sets, histogram observes, and span enter/exit with the
// trace buffer on and off. Later PRs use these to prove instrumentation in
// hot loops stays cheap.
#include <benchmark/benchmark.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace ams;

void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter& counter =
      obs::MetricsRegistry::Get().GetCounter("bench/counter");
  for (auto _ : state) {
    counter.Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterIncrement)->ThreadRange(1, 8);

void BM_CounterLookupAndIncrement(benchmark::State& state) {
  // The anti-pattern cost: registry lookup on every increment instead of a
  // cached reference.
  for (auto _ : state) {
    obs::MetricsRegistry::Get().GetCounter("bench/counter_lookup").Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterLookupAndIncrement);

void BM_LabeledCounterLookupAndIncrement(benchmark::State& state) {
  // Labeled lookup pays the canonical-name encode + hash probe each call;
  // a cached reference (as in BM_CounterIncrement) pays it once.
  for (auto _ : state) {
    obs::MetricsRegistry::Get()
        .GetCounter("bench/counter_labeled", {{"model", "AMS"}})
        .Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LabeledCounterLookupAndIncrement);

void BM_GaugeSet(benchmark::State& state) {
  obs::Gauge& gauge = obs::MetricsRegistry::Get().GetGauge("bench/gauge");
  double value = 0.0;
  for (auto _ : state) {
    gauge.Set(value);
    value += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& histogram =
      obs::MetricsRegistry::Get().GetHistogram("bench/hist");
  double value = 0.0;
  for (auto _ : state) {
    histogram.Observe(value);
    value = value < 1000.0 ? value + 0.1 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve)->ThreadRange(1, 8);

void BM_HistogramPercentile(benchmark::State& state) {
  // Report-time cost, not hot-path: interpolating p50/p95/p99 from a
  // populated default-bounds histogram snapshot.
  obs::Histogram& histogram =
      obs::MetricsRegistry::Get().GetHistogram("bench/hist_pct");
  for (int i = 0; i < 4096; ++i) {
    histogram.Observe(0.01 * static_cast<double>(i));
  }
  ams::obs::MetricsSnapshot::HistogramValue view;
  view.count = histogram.count();
  view.sum = histogram.sum();
  view.bucket_bounds = histogram.bucket_bounds();
  view.bucket_counts = histogram.bucket_counts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.Percentile(0.50));
    benchmark::DoNotOptimize(view.Percentile(0.95));
    benchmark::DoNotOptimize(view.Percentile(0.99));
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_HistogramPercentile);

void BM_SpanEnterExit(benchmark::State& state) {
  obs::TraceBuffer::Get().SetEnabled(false);
  for (auto _ : state) {
    AMS_TRACE_SPAN("bench/span");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnterExit);

void BM_SpanEnterExitBufferEnabled(benchmark::State& state) {
  obs::TraceBuffer::Get().SetEnabled(true);
  for (auto _ : state) {
    AMS_TRACE_SPAN("bench/span_buffered");
  }
  obs::TraceBuffer::Get().SetEnabled(false);
  obs::TraceBuffer::Get().Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnterExitBufferEnabled);

}  // namespace

BENCHMARK_MAIN();
