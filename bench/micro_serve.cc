// Microbenchmarks of the serving layer: AMSMODEL1 artifact encode/decode
// and save/load, AMSNET1 frame encode/decode (the per-request wire cost of
// the network front), single-request scoring latency, and batched scoring
// throughput at several micro-batch sizes (the latency-vs-batch-size curve
// that motivates AMS_SERVE_BATCH tuning). `BENCH_serve.json` in the repo
// root is the committed baseline; tools/check_serve.sh gates on it.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "ams/ams_model.h"
#include "data/features.h"
#include "data/generator.h"
#include "graph/company_graph.h"
#include "serve/artifact.h"
#include "serve/framing.h"
#include "serve/server.h"

namespace {

using namespace ams;

struct ServeBenchFixture {
  core::AmsModel model;
  robust::Checkpoint state;
  la::Matrix block;
};

/// One small fitted AMS model plus a request block, built once per process.
const ServeBenchFixture& Fixture() {
  static const ServeBenchFixture* fixture = [] {
    data::GeneratorConfig config = data::GeneratorConfig::Defaults(
        data::DatasetProfile::kTransactionAmount, 42);
    config.num_companies = 24;
    config.num_sectors = 4;
    data::Panel panel = data::GenerateMarket(config).MoveValue();
    data::FeatureBuilder builder(&panel, data::FeatureOptions{});
    data::Dataset train = builder.Build({4, 5, 6, 7, 8}).MoveValue();
    data::Dataset valid = builder.Build({9}).MoveValue();
    data::Dataset test = builder.Build({10}).MoveValue();
    const data::Standardizer standardizer = data::Standardizer::Fit(train);
    standardizer.Apply(&train);
    standardizer.Apply(&valid);
    standardizer.Apply(&test);
    graph::CorrelationGraphOptions graph_options;
    graph_options.top_k = 3;
    graph::CompanyGraph graph =
        graph::CompanyGraph::BuildFromRevenue(panel.RevenueHistories(8),
                                              graph_options)
            .MoveValue();
    core::AmsConfig cfg;
    cfg.node_transform_layers = {16};
    cfg.gat.hidden_per_head = {4};
    cfg.gat.num_heads = 2;
    cfg.gat.out_features = 8;
    cfg.generator_hidden = {16};
    cfg.max_epochs = 6;
    cfg.patience = 6;
    auto* fx = new ServeBenchFixture{core::AmsModel(cfg), {}, test.x};
    fx->model.Fit(train, valid, graph).Abort("bench fit");
    fx->state = fx->model.ExportState().MoveValue();
    return fx;
  }();
  return *fixture;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void BM_ArtifactEncodeDecode(benchmark::State& state) {
  const ServeBenchFixture& fx = Fixture();
  for (auto _ : state) {
    const std::string bytes = serve::EncodeArtifact(fx.state);
    auto decoded = serve::DecodeArtifact(bytes);
    if (!decoded.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_ArtifactEncodeDecode);

void BM_ArtifactSaveLoad(benchmark::State& state) {
  const ServeBenchFixture& fx = Fixture();
  const std::string path = TempPath("ams_bench_artifact.bin");
  for (auto _ : state) {
    serve::SaveAmsArtifact(path, fx.model).Abort("bench save");
    auto model = serve::LoadAmsArtifact(path);
    if (!model.ok()) state.SkipWithError("load failed");
    benchmark::DoNotOptimize(model);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_ArtifactSaveLoad);

void BM_FrameEncodeScoreRequest(benchmark::State& state) {
  const ServeBenchFixture& fx = Fixture();
  for (auto _ : state) {
    const std::string wire = serve::EncodeScoreRequest(1, 250, fx.block);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<int64_t>(serve::EncodeScoreRequest(1, 250, fx.block).size()));
}
BENCHMARK(BM_FrameEncodeScoreRequest);

void BM_FrameDecodeScoreRequest(benchmark::State& state) {
  const ServeBenchFixture& fx = Fixture();
  const std::string wire = serve::EncodeScoreRequest(1, 250, fx.block);
  const std::string_view body = std::string_view(wire).substr(4);
  for (auto _ : state) {
    auto frame = serve::DecodeFrame(body);
    if (!frame.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(body.size()));
}
BENCHMARK(BM_FrameDecodeScoreRequest);

void BM_ScoreSingle(benchmark::State& state) {
  const ServeBenchFixture& fx = Fixture();
  serve::ServerOptions options;
  options.max_batch = 1;
  options.max_wait_ms = 0.0;
  serve::InferenceServer server(options);
  server.LoadModel(core::AmsModel::FromState(fx.state).MoveValue())
      .Abort("bench load");
  for (auto _ : state) {
    auto scores = server.Score(fx.block);
    if (!scores.ok()) state.SkipWithError("score failed");
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoreSingle);

void BM_ScoreBatch(benchmark::State& state) {
  const ServeBenchFixture& fx = Fixture();
  const int batch = static_cast<int>(state.range(0));
  serve::ServerOptions options;
  options.max_batch = batch;
  options.max_wait_ms = 0.5;
  serve::InferenceServer server(options);
  server.LoadModel(core::AmsModel::FromState(fx.state).MoveValue())
      .Abort("bench load");
  const std::vector<la::Matrix> requests(batch, fx.block);
  for (auto _ : state) {
    auto results = server.ScoreBatch(requests);
    for (const auto& r : results) {
      if (!r.ok()) state.SkipWithError("score failed");
    }
    benchmark::DoNotOptimize(results);
  }
  // Requests per second, so the batch-size sweep reads as throughput.
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ScoreBatch)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
