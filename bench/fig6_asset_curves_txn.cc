// Reproduces Fig. 6: daily asset curves of every model's strategy on the
// transaction-amount dataset (CSV series to stdout; paper plots the same).
//
// Usage: fig6_asset_curves_txn [--seed=42] [--trials=N]
#include "bench/backtest_common.h"
#include "obs/report.h"

int main(int argc, char** argv) {
  ams::obs::InstallExitReporter();
  auto run = ams::bench::RunBacktests(
      ams::data::DatasetProfile::kTransactionAmount, argc, argv);
  ams::bench::PrintAssetCurves(
      run, "Fig. 6 — strategy asset curves, transaction amount dataset");
  return 0;
}
