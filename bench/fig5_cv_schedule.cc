// Reproduces Fig. 5: the time-series cross-validation layout for both
// datasets (which quarters are train/validation/test at each step).
//
// Usage: fig5_cv_schedule [--seed=42]
#include <cstdio>

#include "bench/bench_util.h"
#include "obs/report.h"
#include "data/cv.h"
#include "data/generator.h"

using namespace ams;

int main(int argc, char** argv) {
  obs::InstallExitReporter();
  const uint64_t seed = GetFlagU64(argc, argv, "seed", 42);
  for (data::DatasetProfile profile :
       {data::DatasetProfile::kTransactionAmount,
        data::DatasetProfile::kMapQuery}) {
    auto panel = data::GenerateMarket(
        data::GeneratorConfig::Defaults(profile, seed));
    panel.status().Abort("generate");
    auto folds = data::TimeSeriesCvFolds(
        panel.ValueOrDie().num_quarters, data::DefaultCvOptions(profile));
    folds.status().Abort("folds");
    std::printf("Fig. 5 — time-series cross-validation schedule\n%s\n",
                data::DescribeFolds(panel.ValueOrDie(), folds.ValueOrDie())
                    .c_str());
  }
  return 0;
}
