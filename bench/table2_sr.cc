// Reproduces Table II: Surprise Ratio (SR) of AMS and all baselines on both
// datasets, with a paired t-test of each model's per-fold SR against the
// analysts' consensus (SR == 1) on the transaction-amount folds.
//
// Usage: table2_sr [--seed=42] [--trials=N] [--profile=txn|map|both]
#include <cstdio>

#include "bench/bench_util.h"
#include "obs/report.h"

using namespace ams;

namespace {

void RunProfile(data::DatasetProfile profile, int argc, char** argv) {
  models::ExperimentConfig config =
      bench::ParseExperimentFlags(argc, argv, profile);
  auto result = models::RunExperimentCached(config);
  result.status().Abort("experiment");
  const models::ExperimentResult& experiment = result.ValueOrDie();

  const bool per_fold_columns = experiment.cv_folds.size() <= 2;
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header = {"Model", "SR"};
  if (!per_fold_columns) {
    header.push_back("P-value");
  } else {
    for (const auto& fold : experiment.cv_folds) {
      header.push_back(
          "SR(" + experiment.panel.QuarterAt(fold.test_quarter).ToString() +
          ")");
    }
  }
  rows.push_back(header);
  for (const models::ModelOutcome& model : experiment.models) {
    std::vector<std::string> row = {model.name,
                                    FormatDouble(model.MeanSr(), 4)};
    if (!per_fold_columns) {
      // One-sample t-test of per-fold SR against the consensus (SR = 1).
      auto ttest = la::OneSampleTTest(model.FoldSrs(), 1.0);
      row.push_back(ttest.ok()
                        ? bench::FormatPValue(ttest.ValueOrDie().p_value)
                        : "n/a");
    } else {
      for (const auto& fold : model.folds) {
        row.push_back(FormatDouble(fold.eval.sr, 4));
      }
    }
    rows.push_back(row);
  }
  std::printf(
      "Table II — SR (Surprise Ratio) on the %s dataset\n"
      "(SR < 1: the model's revenue forecast beats the analysts' consensus)\n"
      "%s\n",
      data::DatasetProfileName(profile), RenderTable(rows).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  obs::InstallExitReporter();
  const std::string profile = GetFlag(argc, argv, "profile", "both");
  if (profile == "txn" || profile == "both") {
    RunProfile(data::DatasetProfile::kTransactionAmount, argc, argv);
  }
  if (profile == "map" || profile == "both") {
    RunProfile(data::DatasetProfile::kMapQuery, argc, argv);
  }
  return 0;
}
